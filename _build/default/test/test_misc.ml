(* Cross-cutting coverage: per-screen virtual desktops, panner stacking,
   places-file output on disk, WM_COMMAND as an argv list, and the wm_state
   string conversions. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Panner = Swm_core.Panner
module Functions = Swm_core.Functions
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let test_per_screen_virtual_desktops () =
  let server =
    Server.create
      ~screens:
        [ { Server.size = (1152, 900); monochrome = false };
          { Server.size = (1024, 768); monochrome = false } ]
      ()
  in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look;
          "swm*rootPanels:\nswm*panner: False\n\
           swm.color.screen1.desktopSize: 2048x1536\n" ]
      server
  in
  let ctx = Wm.ctx wm in
  (* Both screens got desktops, with their own sizes. *)
  (match ((Ctx.screen ctx 0).Ctx.vdesk, (Ctx.screen ctx 1).Ctx.vdesk) with
  | Some v0, Some v1 ->
      check Alcotest.bool "screen0 default size" true (v0.Ctx.vsize = (3456, 2700));
      check Alcotest.bool "screen1 specific size" true (v1.Ctx.vsize = (2048, 1536))
  | _ -> Alcotest.fail "expected desktops on both screens");
  (* Panning one screen leaves the other alone. *)
  Vdesk.pan_to ctx ~screen:0 (Geom.point 500 400);
  check Alcotest.bool "screen0 panned" true
    (Vdesk.offset ctx ~screen:0 = Geom.point 500 400);
  check Alcotest.bool "screen1 untouched" true
    (Vdesk.offset ctx ~screen:1 = Geom.point 0 0)

let test_panner_mirrors_stacking () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
  let ctx = Wm.ctx wm in
  (* Two overlapping clients; raise the first; the panner's miniatures must
     stack the same way. *)
  let a = Stock.xterm server ~at:(Geom.point 100 100) () in
  let b = Stock.xterm server ~at:(Geom.point 150 150) ~instance:"x2" () in
  ignore (Wm.step wm);
  let ca = Option.get (Wm.find_client wm (Client_app.window a)) in
  let cb = Option.get (Wm.find_client wm (Client_app.window b)) in
  Functions.execute ctx
    (Functions.invocation ~client:ca ~screen:0 ())
    [ { Swm_core.Bindings.fname = "f.raise"; farg = None } ];
  let vdesk = Option.get (Ctx.screen ctx 0).Ctx.vdesk in
  let minis =
    List.filter_map
      (fun w -> Panner.client_of_miniature ctx w)
      (Server.children_of server vdesk.Ctx.panner_client)
  in
  (* children_of is bottom-to-top: b's miniature below a's. *)
  let order = List.map (fun (c : Ctx.client) -> c.Ctx.instance) minis in
  check (Alcotest.list Alcotest.string) "panner stacking mirrors desktop"
    [ cb.Ctx.instance; ca.Ctx.instance ]
    order

let test_places_file_written_to_disk () =
  let path = Filename.temp_file "swm_places" ".sh" in
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look;
          "swm*virtualDesktop: False\nswm*rootPanels:\nswm*placesFile: " ^ path ^ "\n" ]
      server
  in
  let ctx = Wm.ctx wm in
  let _app = Stock.xterm server ~at:(Geom.point 15 25) () in
  ignore (Wm.step wm);
  Functions.execute ctx
    (Functions.invocation ~screen:0 ())
    [ { Swm_core.Bindings.fname = "f.places"; farg = None } ];
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  check Alcotest.bool "file written" true
    (Astring_contains.contains content "swmhints -geometry");
  check Alcotest.bool "matches in-memory copy" true
    (Some content = ctx.Ctx.last_places)

let test_wm_command_argv_list () =
  (* Clients that set WM_COMMAND as an argv list (the other ICCCM form). *)
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  let conn = Server.connect server ~name:"argv" in
  let win =
    Server.create_window server conn
      ~parent:(Server.root server ~screen:0)
      ~geom:(Geom.rect 5 5 80 60) ()
  in
  Server.change_property server conn win ~name:Prop.wm_command
    (Prop.String_list [ "xeyes"; "-geometry"; "160x100" ]);
  Server.map_window server conn win;
  ignore (Wm.step wm);
  let hints = Functions.places_hints (Wm.ctx wm) in
  check Alcotest.bool "argv joined into the command string" true
    (List.exists
       (fun h -> h.Swm_core.Session.command = "xeyes -geometry 160x100")
       hints)

let test_wm_state_strings () =
  List.iter
    (fun state ->
      check Alcotest.bool "roundtrip" true
        (Prop.wm_state_of_string (Prop.wm_state_to_string state) = Some state))
    [ Prop.Withdrawn; Prop.Normal; Prop.Iconic ];
  check Alcotest.bool "garbage rejected" true (Prop.wm_state_of_string "Nope" = None)

let suite =
  [
    Alcotest.test_case "per-screen virtual desktops" `Quick
      test_per_screen_virtual_desktops;
    Alcotest.test_case "panner mirrors stacking" `Quick test_panner_mirrors_stacking;
    Alcotest.test_case "placesFile written to disk" `Quick
      test_places_file_written_to_disk;
    Alcotest.test_case "WM_COMMAND argv list" `Quick test_wm_command_argv_list;
    Alcotest.test_case "wm_state string conversions" `Quick test_wm_state_strings;
  ]
