module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Render = Swm_xlib.Render
module Region = Swm_xlib.Region

let check = Alcotest.check

let fixture () =
  let server =
    Server.create ~screens:[ { Server.size = (160, 80); monochrome = false } ] ()
  in
  let conn = Server.connect server ~name:"render" in
  (server, conn, Server.root server ~screen:0)

let test_dimensions () =
  let server, _conn, _root = fixture () in
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  check Alcotest.int "width" 20 (Render.width canvas);
  check Alcotest.int "height" 10 (Render.height canvas)

let test_background_fill () =
  let server, conn, root = fixture () in
  let w =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 80 40)
      ~background:'z' ()
  in
  Server.map_window server conn w;
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  check Alcotest.char "filled" 'z' (Render.cell canvas ~x:2 ~y:2);
  check Alcotest.char "root elsewhere" '.' (Render.cell canvas ~x:15 ~y:8)

let test_unmapped_invisible () =
  let server, conn, root = fixture () in
  let w =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 80 40)
      ~background:'z' ()
  in
  ignore w;
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  check Alcotest.char "not painted" '.' (Render.cell canvas ~x:2 ~y:2)

let test_stacking_order_paint () =
  let server, conn, root = fixture () in
  let a =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 80 40)
      ~background:'a' ()
  in
  let b =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 80 40)
      ~background:'b' ()
  in
  Server.map_window server conn a;
  Server.map_window server conn b;
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  check Alcotest.char "top paints last" 'b' (Render.cell canvas ~x:2 ~y:2);
  Server.raise_window server conn a;
  let canvas2 = Render.render server ~screen:0 ~scale:8 () in
  check Alcotest.char "after raise" 'a' (Render.cell canvas2 ~x:2 ~y:2);
  check Alcotest.bool "renders differ" true (Render.diff canvas canvas2 > 0)

let test_label () =
  let server, conn, root = fixture () in
  let w =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 160 16)
      ~background:' ' ~label:"hello" ()
  in
  Server.map_window server conn w;
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  let row = String.init 5 (fun i -> Render.cell canvas ~x:i ~y:0) in
  check Alcotest.string "label drawn" "hello" row

let test_shape_clips_fill () =
  let server, conn, root = fixture () in
  let w =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 80 80)
      ~background:'o' ()
  in
  Server.map_window server conn w;
  Server.shape_set server conn w (Region.disc ~cx:40 ~cy:40 ~r:36);
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  check Alcotest.char "centre filled" 'o' (Render.cell canvas ~x:5 ~y:5);
  check Alcotest.char "corner clipped" '.' (Render.cell canvas ~x:0 ~y:0)

let test_render_window_subtree () =
  let server, conn, root = fixture () in
  let w =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 40 40 80 40)
      ~background:'w' ()
  in
  let child =
    Server.create_window server conn ~parent:w ~geom:(Geom.rect 0 0 16 16)
      ~background:'c' ()
  in
  Server.map_window server conn w;
  Server.map_window server conn child;
  let canvas = Render.render_window server w ~scale:8 () in
  (* Rendered in the window's own coordinates regardless of position. *)
  check Alcotest.char "child at origin" 'c' (Render.cell canvas ~x:1 ~y:1);
  check Alcotest.char "window fill" 'w' (Render.cell canvas ~x:8 ~y:3)

let test_to_string () =
  let server, _conn, _root = fixture () in
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  let s = Render.to_string canvas in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check Alcotest.int "line count" (Render.height canvas) (List.length lines);
  check Alcotest.int "line width" (Render.width canvas)
    (String.length (List.hd lines))

let test_bitmaps () =
  let module Bitmap = Swm_xlib.Bitmap in
  check Alcotest.bool "xlogo32 exists" true (Bitmap.find "xlogo32" <> None);
  check Alcotest.bool "unknown absent" true (Bitmap.find "nope" = None);
  check Alcotest.bool "catalogue non-trivial" true (List.length (Bitmap.names ()) >= 5);
  (try
     ignore (Bitmap.make ~name:"bad" ~rows:[ "ab"; "c" ]);
     Alcotest.fail "ragged rows accepted"
   with Invalid_argument _ -> ());
  (* Art renders onto the canvas. *)
  let server, conn, root = fixture () in
  let w =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 160 80) ()
  in
  Server.set_art server w (Some Bitmap.xlogo32.Bitmap.rows);
  Server.map_window server conn w;
  let canvas = Render.render server ~screen:0 ~scale:8 () in
  check Alcotest.char "art corner" 'X' (Render.cell canvas ~x:0 ~y:0)

let suite =
  [
    Alcotest.test_case "bitmaps" `Quick test_bitmaps;
    Alcotest.test_case "canvas dimensions" `Quick test_dimensions;
    Alcotest.test_case "background fill" `Quick test_background_fill;
    Alcotest.test_case "unmapped windows invisible" `Quick test_unmapped_invisible;
    Alcotest.test_case "stacking order" `Quick test_stacking_order_paint;
    Alcotest.test_case "labels" `Quick test_label;
    Alcotest.test_case "shape clipping" `Quick test_shape_clips_fill;
    Alcotest.test_case "render_window subtree" `Quick test_render_window_subtree;
    Alcotest.test_case "to_string shape" `Quick test_to_string;
  ]
