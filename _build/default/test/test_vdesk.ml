module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let vdesk_resources ?(extra = "") () =
  [
    Templates.open_look;
    "swm*rootPanels:\nswm*panner: False\nswm*desktopSize: 3456x2700\n" ^ extra;
  ]

let fixture ?extra () =
  let server = Server.create () in
  let wm = Wm.start ~resources:(vdesk_resources ?extra ()) server in
  (server, wm, Wm.ctx wm)

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let test_created_from_resources () =
  let _server, _wm, ctx = fixture () in
  match (Ctx.screen ctx 0).Ctx.vdesk with
  | Some vdesk ->
      check Alcotest.bool "size" true (vdesk.Ctx.vsize = (3456, 2700));
      check Alcotest.int "one desktop" 1 (Array.length vdesk.Ctx.vwins)
  | None -> Alcotest.fail "expected a virtual desktop"

let test_frames_live_in_desktop () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let parent = Server.parent_of server client.Ctx.frame in
  check Alcotest.bool "frame parented on desktop window" true
    (Vdesk.is_desktop_window ctx ~screen:0 parent)

let test_swm_root_property () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  match Server.get_property server client.Ctx.cwin ~name:Prop.swm_root with
  | Some (Prop.Window r) ->
      check Alcotest.bool "SWM_ROOT names the desktop" true
        (Vdesk.is_desktop_window ctx ~screen:0 r)
  | _ -> Alcotest.fail "SWM_ROOT missing"

let test_pan_moves_desktop_not_clients () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  ignore (Client_app.process_events app);
  let desktop_pos_before = Server.geometry server client.Ctx.frame in
  let abs_before = Server.root_geometry server client.Ctx.cwin in
  Vdesk.pan_to ctx ~screen:0 (Geom.point 25 25);
  (* Paper §6.3.1: the window gets NO ConfigureNotify, real or synthetic,
     because it has not moved with respect to its root. *)
  check Alcotest.int "no events for the client" 0 (Client_app.process_events app);
  let desktop_pos_after = Server.geometry server client.Ctx.frame in
  check Alcotest.bool "desktop coords unchanged" true
    (Geom.rect_equal desktop_pos_before desktop_pos_after);
  let abs_after = Server.root_geometry server client.Ctx.cwin in
  check Alcotest.int "on-glass x shifted" (abs_before.x - 25) abs_after.x;
  check Alcotest.int "on-glass y shifted" (abs_before.y - 25) abs_after.y

let test_pan_clamped () =
  let server, _wm, ctx = fixture () in
  Vdesk.pan_to ctx ~screen:0 (Geom.point (-100) (-100));
  check Alcotest.bool "clamped at origin" true
    (Vdesk.offset ctx ~screen:0 = Geom.point 0 0);
  Vdesk.pan_to ctx ~screen:0 (Geom.point 99999 99999);
  let sw, sh = Server.screen_size server ~screen:0 in
  check Alcotest.bool "clamped at far edge" true
    (Vdesk.offset ctx ~screen:0 = Geom.point (3456 - sw) (2700 - sh))

let test_viewport () =
  let server, _wm, ctx = fixture () in
  Vdesk.pan_to ctx ~screen:0 (Geom.point 200 300);
  let vp = Vdesk.viewport ctx ~screen:0 in
  let sw, sh = Server.screen_size server ~screen:0 in
  check Alcotest.bool "viewport rect" true
    (Geom.rect_equal vp (Geom.rect 200 300 sw sh))

let test_sticky_stays_on_glass () =
  let server, wm, ctx = fixture () in
  let clock = Stock.xclock server ~at:(Geom.point 500 300) () in
  ignore (Wm.step wm);
  let client = client_of wm clock in
  Vdesk.set_sticky ctx client true;
  check Alcotest.bool "flag" true client.Ctx.sticky;
  let abs_before = Server.root_geometry server client.Ctx.frame in
  Vdesk.pan_to ctx ~screen:0 (Geom.point 400 400);
  let abs_after = Server.root_geometry server client.Ctx.frame in
  check Alcotest.bool "sticky window did not move on glass" true
    (abs_before.x = abs_after.x && abs_before.y = abs_after.y);
  (* SWM_ROOT now names the real root. *)
  (match Server.get_property server client.Ctx.cwin ~name:Prop.swm_root with
  | Some (Prop.Window r) ->
      check Alcotest.bool "real root" true (Xid.equal r (Server.root server ~screen:0))
  | _ -> Alcotest.fail "SWM_ROOT");
  (* Unstick: back onto the desktop, same on-glass position. *)
  Vdesk.set_sticky ctx client false;
  let abs_unstuck = Server.root_geometry server client.Ctx.frame in
  check Alcotest.bool "unstick keeps glass position" true
    (abs_after.x = abs_unstuck.x && abs_after.y = abs_unstuck.y);
  check Alcotest.bool "frame back on desktop" true
    (Vdesk.is_desktop_window ctx ~screen:0 (Server.parent_of server client.Ctx.frame))

let test_sticky_resource_starts_sticky () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:(vdesk_resources ~extra:"swm*XClock*sticky: True\n" ())
      server
  in
  let clock = Stock.xclock server () in
  ignore (Wm.step wm);
  let client = client_of wm clock in
  check Alcotest.bool "starts sticky" true client.Ctx.sticky

let test_usposition_absolute_on_desktop () =
  (* Paper §6.3.2: with the desktop panned to (1000,1000), USPosition
     +100+100 goes to absolute (100,100); PPosition +100+100 goes to
     (1100,1100). *)
  let server, wm, ctx = fixture () in
  Vdesk.pan_to ctx ~screen:0 (Geom.point 1000 1000);
  let us =
    Client_app.launch server
      (Client_app.spec ~instance:"usapp" ~us_position:true (Geom.rect 100 100 50 50))
  in
  let pp =
    Client_app.launch server
      (Client_app.spec ~instance:"ppapp" ~p_position:true (Geom.rect 100 100 50 50))
  in
  ignore (Wm.step wm);
  let us_frame = Server.geometry server (client_of wm us).Ctx.frame in
  let pp_frame = Server.geometry server (client_of wm pp).Ctx.frame in
  check Alcotest.int "USPosition absolute x" 100 us_frame.x;
  check Alcotest.int "USPosition absolute y" 100 us_frame.y;
  check Alcotest.int "PPosition viewport-relative x" 1100 pp_frame.x;
  check Alcotest.int "PPosition viewport-relative y" 1100 pp_frame.y

let test_default_placement_in_viewport () =
  let server, wm, ctx = fixture () in
  Vdesk.pan_to ctx ~screen:0 (Geom.point 800 600);
  let app =
    Client_app.launch server (Client_app.spec ~instance:"nohints" (Geom.rect 0 0 50 50))
  in
  ignore (Wm.step wm);
  let fgeom = Server.geometry server (client_of wm app).Ctx.frame in
  let vp = Vdesk.viewport ctx ~screen:0 in
  check Alcotest.bool "placed inside the visible viewport" true
    (fgeom.x >= vp.x && fgeom.y >= vp.y && fgeom.x < vp.x + vp.w && fgeom.y < vp.y + vp.h)

let test_resize_desktop () =
  let server, _wm, ctx = fixture () in
  Vdesk.resize_desktop ctx ~screen:0 (4000, 3000);
  (match (Ctx.screen ctx 0).Ctx.vdesk with
  | Some vdesk -> check Alcotest.bool "resized" true (vdesk.Ctx.vsize = (4000, 3000))
  | None -> Alcotest.fail "vdesk");
  (* Shrinking clamps the viewport back in bounds. *)
  Vdesk.pan_to ctx ~screen:0 (Geom.point 2500 2000);
  let sw, sh = Server.screen_size server ~screen:0 in
  Vdesk.resize_desktop ctx ~screen:0 (2000, 1500);
  let o = Vdesk.offset ctx ~screen:0 in
  check Alcotest.bool "viewport clamped after shrink" true
    (o.px + sw <= 2000 && o.py + sh <= 1500)

let test_desktop_size_limits () =
  let _server, _wm, ctx = fixture () in
  Alcotest.check_raises "beyond X window limit"
    (Invalid_argument "Vdesk.resize_desktop: bad size") (fun () ->
      Vdesk.resize_desktop ctx ~screen:0 (40000, 2000))

let test_multiple_desktops () =
  let server = Server.create () in
  let wm = Wm.start ~resources:(vdesk_resources ~extra:"swm*desktops: 3\n" ()) server in
  let ctx = Wm.ctx wm in
  check Alcotest.int "three desktops" 3 (Vdesk.desktop_count ctx ~screen:0);
  let app = Stock.xterm server ~at:(Geom.point 50 50) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "visible on desktop 0" true
    (Server.is_viewable server client.Ctx.cwin);
  Vdesk.switch_desktop ctx ~screen:0 1;
  check Alcotest.int "current" 1 (Vdesk.current_desktop ctx ~screen:0);
  check Alcotest.bool "hidden on desktop 1" false
    (Server.is_viewable server client.Ctx.cwin);
  Vdesk.switch_desktop ctx ~screen:0 0;
  check Alcotest.bool "visible again" true (Server.is_viewable server client.Ctx.cwin);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Vdesk.switch_desktop: index out of range") (fun () ->
      Vdesk.switch_desktop ctx ~screen:0 5)

let test_sticky_across_desktops () =
  let server = Server.create () in
  let wm = Wm.start ~resources:(vdesk_resources ~extra:"swm*desktops: 2\n" ()) server in
  let ctx = Wm.ctx wm in
  let clock = Stock.xclock server () in
  ignore (Wm.step wm);
  let client = client_of wm clock in
  Vdesk.set_sticky ctx client true;
  Vdesk.switch_desktop ctx ~screen:0 1;
  check Alcotest.bool "sticky window visible on the other desktop" true
    (Server.is_viewable server client.Ctx.cwin)

(* -------- the popup-positioning problem (paper §6.3.1) -------- *)

let test_popup_positioning_problem_and_fix () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 300 300) () in
  ignore (Wm.step wm);
  ignore (Client_app.process_events app);
  (* Pan far away: the app's window is now outside the visible viewport. *)
  Vdesk.pan_to ctx ~screen:0 (Geom.point 2000 1500);
  ignore (Wm.step wm);
  ignore (Client_app.process_events app);
  let client = client_of wm app in
  let frame_desktop = Server.geometry server client.Ctx.frame in
  (* A naive toolkit positions against the real root and clamps to the
     screen — the dialog lands far from its parent window on the desktop.
     Its position is in real-root coordinates; convert to desktop coords
     through the pan offset for a fair comparison. *)
  let o = Vdesk.offset ctx ~screen:0 in
  let _, naive_pos = Client_app.popup_dialog app ~use_swm_root:false in
  let distance_naive =
    abs (naive_pos.Geom.px + o.px - frame_desktop.x)
    + abs (naive_pos.Geom.py + o.py - frame_desktop.y)
  in
  (* The SWM_ROOT-aware toolkit positions against the desktop window. *)
  let dialog, fixed_pos = Client_app.popup_dialog app ~use_swm_root:true in
  let distance_fixed =
    abs (fixed_pos.Geom.px - frame_desktop.x) + abs (fixed_pos.Geom.py - frame_desktop.y)
  in
  check Alcotest.bool "dialog parented on the desktop window" true
    (Vdesk.is_desktop_window ctx ~screen:0 (Server.parent_of server dialog));
  check Alcotest.bool "SWM_ROOT placement lands near its window" true
    (distance_fixed < 300);
  check Alcotest.bool "naive placement misses" true (distance_naive > distance_fixed)

let suite =
  [
    Alcotest.test_case "created from resources" `Quick test_created_from_resources;
    Alcotest.test_case "frames live in the desktop" `Quick test_frames_live_in_desktop;
    Alcotest.test_case "SWM_ROOT property" `Quick test_swm_root_property;
    Alcotest.test_case "pan moves glass, not clients" `Quick
      test_pan_moves_desktop_not_clients;
    Alcotest.test_case "pan clamps to bounds" `Quick test_pan_clamped;
    Alcotest.test_case "viewport" `Quick test_viewport;
    Alcotest.test_case "sticky windows stick to the glass" `Quick
      test_sticky_stays_on_glass;
    Alcotest.test_case "sticky resource" `Quick test_sticky_resource_starts_sticky;
    Alcotest.test_case "USPosition vs PPosition" `Quick
      test_usposition_absolute_on_desktop;
    Alcotest.test_case "default placement in viewport" `Quick
      test_default_placement_in_viewport;
    Alcotest.test_case "resize desktop at runtime" `Quick test_resize_desktop;
    Alcotest.test_case "desktop size limits" `Quick test_desktop_size_limits;
    Alcotest.test_case "multiple desktops" `Quick test_multiple_desktops;
    Alcotest.test_case "sticky across desktops" `Quick test_sticky_across_desktops;
    Alcotest.test_case "popup positioning: problem and SWM_ROOT fix" `Quick
      test_popup_positioning_problem_and_fix;
  ]
