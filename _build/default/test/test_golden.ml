(* Golden-figure regression tests: the rendered figures shipped in
   figures/*.txt must match what the code produces today.  Regenerate with

     for f in fig1 fig2 fig3 fig_shape; do
       dune exec bin/swm_render.exe -- $f > figures/$f.txt; done *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Render = Swm_xlib.Render
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

(* The stored file is swm_render's stdout: a blank line, a header line, then
   the canvas. *)
let golden_body name =
  let path = Filename.concat "../figures" (name ^ ".txt") in
  match In_channel.with_open_text path In_channel.input_all with
  | content -> (
      match String.index_opt content '=' with
      | Some _ ->
          let lines = String.split_on_char '\n' content in
          let body =
            match lines with
            | "" :: header :: rest when String.length header > 0 && header.[0] = '=' ->
                rest
            | _ -> lines
          in
          Some (String.concat "\n" body)
      | None -> None)
  | exception Sys_error _ -> None

let compare_with_golden name rendered =
  match golden_body name with
  | None -> Alcotest.failf "missing or unreadable golden figures/%s.txt" name
  | Some body ->
      (* Tolerate trailing whitespace differences from the shell capture. *)
      let norm s = String.trim s in
      check Alcotest.bool (name ^ " matches golden render") true
        (norm body = norm rendered)

let test_fig1_golden () =
  let server =
    Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] ()
  in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"xterm" ~class_:"XTerm" ~us_position:true
         ~background:'t' (Geom.rect 40 48 320 160))
  in
  ignore (Wm.step wm);
  let client = Option.get (Wm.find_client wm (Client_app.window app)) in
  compare_with_golden "fig1"
    (Render.to_string (Render.render_window server client.Ctx.frame ~scale:8 ()))

let test_fig2_golden () =
  let server =
    Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] ()
  in
  let wm =
    Wm.start ~resources:[ Templates.open_look; "swm*virtualDesktop: False\n" ] server
  in
  let scr = Ctx.screen (Wm.ctx wm) 0 in
  let panel = List.hd scr.Ctx.root_panels in
  let win = Swm_oi.Wobj.window panel in
  let frame =
    match Wm.find_client wm win with
    | Some client -> client.Ctx.frame
    | None -> win
  in
  compare_with_golden "fig2"
    (Render.to_string (Render.render_window server frame ~scale:8 ()))

let test_fig3_golden () =
  let server =
    Server.create ~screens:[ { Server.size = (1152, 900); monochrome = false } ] ()
  in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let _a = Stock.xterm server ~at:(Geom.point 100 120) () in
  let _b = Stock.xclock server ~at:(Geom.point 700 200) () in
  let _c = Stock.xterm server ~at:(Geom.point 1600 1000) ~instance:"xterm2" () in
  ignore (Wm.step wm);
  let ctx = Wm.ctx wm in
  Swm_core.Panner.refresh ctx ~screen:0;
  match (Ctx.screen ctx 0).Ctx.vdesk with
  | Some vdesk ->
      let client = Option.get (Wm.find_client wm vdesk.Ctx.panner_client) in
      compare_with_golden "fig3"
        (Render.to_string (Render.render_window server client.Ctx.frame ~scale:4 ()))
  | None -> Alcotest.fail "no panner"

let test_fig_shape_golden () =
  let server =
    Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] ()
  in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  let _app = Stock.oclock server ~at:(Geom.point 100 80) () in
  ignore (Wm.step wm);
  compare_with_golden "fig_shape"
    (Render.to_string (Render.render server ~screen:0 ~scale:8 ()))

let suite =
  [
    Alcotest.test_case "Figure 1 golden" `Quick test_fig1_golden;
    Alcotest.test_case "Figure 2 golden" `Quick test_fig2_golden;
    Alcotest.test_case "Figure 3 golden" `Quick test_fig3_golden;
    Alcotest.test_case "shaped figure golden" `Quick test_fig_shape_golden;
  ]
