module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

(* A fixture without virtual desktop / panner noise unless asked for. *)
let plain_resources =
  [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]

let fixture ?(resources = plain_resources) () =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  (server, wm)

let managed_client wm app =
  match Wm.find_client wm (Client_app.window app) with
  | Some client -> client
  | None -> Alcotest.fail "client not managed"

let test_map_request_manages () =
  let server, wm = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 50 60) () in
  check Alcotest.bool "not yet mapped (redirect)" false
    (Server.is_mapped server (Client_app.window app));
  ignore (Wm.step wm);
  let client = managed_client wm app in
  check Alcotest.bool "mapped after manage" true
    (Server.is_mapped server (Client_app.window app));
  check Alcotest.bool "frame differs from client" false
    (Xid.equal client.Ctx.frame client.Ctx.cwin);
  check Alcotest.bool "frame viewable" true (Server.is_viewable server client.Ctx.frame);
  check Alcotest.bool "client viewable" true
    (Server.is_viewable server client.Ctx.cwin)

let test_decoration_structure () =
  let server, wm = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 50 60) () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  (* The client window must be inside the frame subtree. *)
  let rec ancestor_of win target =
    (not (Xid.is_none target))
    && (Xid.equal win target
       || ((not (Xid.is_none (Server.parent_of server target)))
          && ancestor_of win (Server.parent_of server target)))
  in
  check Alcotest.bool "client under frame" true
    (ancestor_of client.Ctx.frame client.Ctx.cwin);
  (* OpenLook decoration: name object shows WM_NAME. *)
  match client.Ctx.deco with
  | Some deco -> (
      match Swm_oi.Wobj.find_descendant deco ~name:"name" with
      | Some name_obj ->
          check Alcotest.string "title label" "xterm" (Swm_oi.Wobj.label name_obj)
      | None -> Alcotest.fail "no name object")
  | None -> Alcotest.fail "no decoration"

let test_wm_state_set () =
  let server, wm = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  match Server.get_property server (Client_app.window app) ~name:Prop.wm_state_name with
  | Some (Prop.Wm_state_value { state = Prop.Normal; _ }) -> ()
  | _ -> Alcotest.fail "WM_STATE should be NormalState"

let test_usposition_honoured () =
  let server, wm = fixture () in
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"placed" ~us_position:true (Geom.rect 123 234 50 50))
  in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  let fgeom = Server.geometry server client.Ctx.frame in
  check Alcotest.int "frame x from USPosition" 123 fgeom.x;
  check Alcotest.int "frame y from USPosition" 234 fgeom.y

let test_configure_request_resizes () =
  let server, wm = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 10 10) () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  let frame_before = Server.geometry server client.Ctx.frame in
  Client_app.resize_self app (600, 400);
  ignore (Wm.step wm);
  let cgeom = Server.geometry server client.Ctx.cwin in
  check Alcotest.int "client width" 600 cgeom.w;
  check Alcotest.int "client height" 400 cgeom.h;
  let frame_after = Server.geometry server client.Ctx.frame in
  check Alcotest.bool "frame grew" true
    (frame_after.w > frame_before.w && frame_after.h > frame_before.h);
  (* And the client got a synthetic ConfigureNotify. *)
  ignore (Client_app.process_events app);
  check Alcotest.bool "client knows its position" true
    (Client_app.believed_position app <> None)

let test_name_change_updates_title () =
  let server, wm = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  Client_app.set_name app "new title";
  ignore (Wm.step wm);
  match client.Ctx.deco with
  | Some deco ->
      let name_obj = Option.get (Swm_oi.Wobj.find_descendant deco ~name:"name") in
      check Alcotest.string "updated" "new title" (Swm_oi.Wobj.label name_obj)
  | None -> Alcotest.fail "no decoration"

let test_withdraw_unmanages () =
  let server, wm = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 40 50) () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  let frame = client.Ctx.frame in
  Client_app.withdraw app;
  ignore (Wm.step wm);
  check Alcotest.bool "no longer managed" true
    (Wm.find_client wm (Client_app.window app) = None);
  check Alcotest.bool "frame destroyed" false (Server.window_exists server frame);
  check Alcotest.bool "client survives on root" true
    (Server.window_exists server (Client_app.window app));
  check Alcotest.bool "client back on root" true
    (Xid.equal
       (Server.parent_of server (Client_app.window app))
       (Server.root server ~screen:0))

let test_destroy_unmanages () =
  let server, wm = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  let frame = client.Ctx.frame in
  Client_app.destroy app;
  ignore (Wm.step wm);
  check Alcotest.bool "unmanaged" true (Wm.find_client wm (Client_app.window app) = None);
  check Alcotest.bool "frame destroyed" false (Server.window_exists server frame)

let test_shutdown_restores_clients () =
  let server, wm = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 77 88) () in
  ignore (Wm.step wm);
  let abs_before = Server.root_geometry server (Client_app.window app) in
  Wm.shutdown wm;
  let win = Client_app.window app in
  check Alcotest.bool "client survives" true (Server.window_exists server win);
  check Alcotest.bool "on the root" true
    (Xid.equal (Server.parent_of server win) (Server.root server ~screen:0));
  check Alcotest.bool "mapped" true (Server.is_mapped server win);
  let g = Server.geometry server win in
  check Alcotest.int "absolute x kept" abs_before.x g.x;
  (* A second WM can now start and re-manage. *)
  let wm2 = Wm.start ~resources:plain_resources server in
  check Alcotest.bool "re-managed" true (Wm.find_client wm2 win <> None)

let test_second_wm_rejected () =
  let server, _wm = fixture () in
  Alcotest.check_raises "another WM is running"
    (Server.Bad_access "SubstructureRedirect on 0x1 already held by swm") (fun () ->
      ignore (Wm.start ~resources:plain_resources server))

let test_existing_windows_adopted () =
  let server = Server.create () in
  (* Client maps before the WM starts; with no redirect, map succeeds. *)
  let app = Stock.xterm server ~at:(Geom.point 5 5) () in
  check Alcotest.bool "mapped pre-WM" true
    (Server.is_mapped server (Client_app.window app));
  let wm = Wm.start ~resources:plain_resources server in
  check Alcotest.bool "adopted at startup" true
    (Wm.find_client wm (Client_app.window app) <> None)

let test_override_redirect_ignored () =
  let server, wm = fixture () in
  let conn = Server.connect server ~name:"popup" in
  let w =
    Server.create_window server conn
      ~parent:(Server.root server ~screen:0)
      ~geom:(Geom.rect 0 0 10 10) ~override_redirect:true ()
  in
  Server.map_window server conn w;
  ignore (Wm.step wm);
  check Alcotest.bool "not managed" true (Wm.find_client wm w = None)

let test_motif_template () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.motif ] server in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  match client.Ctx.deco with
  | Some deco ->
      check Alcotest.bool "motif sysmenu present" true
        (Swm_oi.Wobj.find_descendant deco ~name:"sysmenu" <> None);
      check Alcotest.bool "maximize present" true
        (Swm_oi.Wobj.find_descendant deco ~name:"maximize" <> None)
  | None -> Alcotest.fail "no decoration"

let test_twm_emulation_template () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.twm_emulation ] server in
  let app = Stock.xterm server ~at:(Geom.point 40 40) () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  let deco = Option.get client.Ctx.deco in
  check Alcotest.string "twm bar" "twmBar" (Swm_oi.Wobj.name deco);
  (* The iconify button carries the xlogo32 image glyph. *)
  let ic = Option.get (Swm_oi.Wobj.find_descendant deco ~name:"twmIconify") in
  check Alcotest.bool "image button" true
    (Server.art_of server (Swm_oi.Wobj.window ic) <> None);
  (* Clicking it iconifies. *)
  let abs = Server.root_geometry server (Swm_oi.Wobj.window ic) in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 2) (abs.y + 2));
  Server.press_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "iconified" true (client.Ctx.state = Swm_xlib.Prop.Iconic)

let test_redecorate_idempotent () =
  let server, wm = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 50 60) () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  let before = Server.geometry server client.Ctx.frame in
  for _ = 1 to 3 do
    Swm_core.Decoration.redecorate (Wm.ctx wm) client;
    ignore (Wm.step wm)
  done;
  let after = Server.geometry server client.Ctx.frame in
  check Alcotest.bool "frame geometry stable across redecorates" true
    (Geom.rect_equal before after);
  check Alcotest.bool "client still inside and viewable" true
    (Server.is_viewable server client.Ctx.cwin)

let test_no_decoration_resource () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look;
          "swm*virtualDesktop: False\nswm*rootPanels:\nswm*XTerm*decoration: none\n" ]
      server
  in
  let app = Stock.xterm server ~at:(Geom.point 30 40) () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  check Alcotest.bool "undecorated: frame is the client" true
    (Xid.equal client.Ctx.frame client.Ctx.cwin);
  check Alcotest.bool "still managed and mapped" true
    (Server.is_mapped server client.Ctx.cwin)

let test_shaped_client_gets_shaped_decoration () =
  let server, wm = fixture () in
  let app = Stock.oclock server ~at:(Geom.point 50 50) () in
  ignore (Wm.step wm);
  let client = managed_client wm app in
  check Alcotest.bool "client flagged shaped" true client.Ctx.shaped;
  (* The shapeit decoration panel shapes the frame to the client. *)
  check Alcotest.bool "frame shaped" true (Server.is_shaped server client.Ctx.frame)

let test_root_panel_is_client () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let ctx = Wm.ctx wm in
  let scr = Ctx.screen ctx 0 in
  match scr.Ctx.root_panels with
  | panel :: _ ->
      let win = Swm_oi.Wobj.window panel in
      (match Wm.find_client wm win with
      | Some client ->
          check Alcotest.bool "root panel reparented (managed)" true
            (not (Xid.equal client.Ctx.frame win));
          check Alcotest.bool "root panel sticky" true client.Ctx.sticky
      | None -> Alcotest.fail "root panel not managed")
  | [] -> Alcotest.fail "no root panel"

let suite =
  [
    Alcotest.test_case "MapRequest manages and maps" `Quick test_map_request_manages;
    Alcotest.test_case "decoration structure" `Quick test_decoration_structure;
    Alcotest.test_case "WM_STATE maintained" `Quick test_wm_state_set;
    Alcotest.test_case "USPosition honoured" `Quick test_usposition_honoured;
    Alcotest.test_case "ConfigureRequest resize" `Quick test_configure_request_resizes;
    Alcotest.test_case "WM_NAME updates title" `Quick test_name_change_updates_title;
    Alcotest.test_case "withdraw unmanages" `Quick test_withdraw_unmanages;
    Alcotest.test_case "destroy unmanages" `Quick test_destroy_unmanages;
    Alcotest.test_case "shutdown restores clients" `Quick test_shutdown_restores_clients;
    Alcotest.test_case "second WM rejected" `Quick test_second_wm_rejected;
    Alcotest.test_case "pre-existing windows adopted" `Quick test_existing_windows_adopted;
    Alcotest.test_case "override-redirect ignored" `Quick test_override_redirect_ignored;
    Alcotest.test_case "Motif template decorates" `Quick test_motif_template;
    Alcotest.test_case "Twm emulation template" `Quick test_twm_emulation_template;
    Alcotest.test_case "redecorate is idempotent" `Quick test_redecorate_idempotent;
    Alcotest.test_case "decoration: none" `Quick test_no_decoration_resource;
    Alcotest.test_case "shaped decoration for shaped client" `Quick
      test_shaped_client_gets_shaped_decoration;
    Alcotest.test_case "root panels are managed clients" `Quick test_root_panel_is_client;
  ]
