module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let fixture () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  (server, wm, Wm.ctx wm)

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let test_command_executes () =
  let server, wm, _ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "f.iconify(XTerm)";
  ignore (Wm.step wm);
  check Alcotest.bool "executed" true ((client_of wm app).Ctx.state = Prop.Iconic)

let test_property_deleted_after_execution () =
  let server, wm, _ctx = fixture () in
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "f.refresh";
  ignore (Wm.step wm);
  check Alcotest.bool "property consumed" true
    (Server.get_property server (Server.root server ~screen:0) ~name:Prop.swm_command
    = None)

let test_multiple_commands_batched () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  (* Two sends before the WM wakes up: both lines must run. *)
  Swmcmd.send server sender ~screen:0 "f.iconify(XTerm)";
  Swmcmd.send server sender ~screen:0 "f.exec(beep)";
  ignore (Wm.step wm);
  check Alcotest.bool "first ran" true ((client_of wm app).Ctx.state = Prop.Iconic);
  check (Alcotest.list Alcotest.string) "second ran" [ "beep" ] ctx.Ctx.executed

let test_prompting_from_swmcmd () =
  (* The paper's example: typing `swmcmd f.raise` prompts for a window. *)
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  let other = Stock.xclock server ~at:(Geom.point 600 100) () in
  ignore (Wm.step wm);
  (* Put the clock on top so we can observe the raise. *)
  let clock = client_of wm other in
  Server.raise_window server ctx.Ctx.conn clock.Ctx.frame;
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "f.raise";
  ignore (Wm.step wm);
  (match ctx.Ctx.mode with
  | Ctx.Prompting _ -> ()
  | _ -> Alcotest.fail "should be prompting");
  Server.warp_pointer server ~screen:0 (Geom.point 150 150);
  Server.press_button server 1;
  ignore (Wm.step wm);
  let term = client_of wm app in
  let top =
    match List.rev (Server.children_of server (Server.root server ~screen:0)) with
    | top :: _ -> top
    | [] -> Alcotest.fail "no children"
  in
  check Alcotest.bool "selected window raised" true
    (Swm_xlib.Xid.equal top term.Ctx.frame)

let test_bad_command_ignored () =
  let server, wm, _ctx = fixture () in
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "not even a function";
  (* Must not raise. *)
  ignore (Wm.step wm)

let suite =
  [
    Alcotest.test_case "command executes" `Quick test_command_executes;
    Alcotest.test_case "property deleted after run" `Quick
      test_property_deleted_after_execution;
    Alcotest.test_case "batched commands" `Quick test_multiple_commands_batched;
    Alcotest.test_case "prompting from swmcmd (paper example)" `Quick
      test_prompting_from_swmcmd;
    Alcotest.test_case "bad commands ignored" `Quick test_bad_command_ignored;
  ]
