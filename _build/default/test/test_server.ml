module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event
module Region = Swm_xlib.Region

let check = Alcotest.check
let rect = Geom.rect

let fixture () =
  let server = Server.create () in
  let conn = Server.connect server ~name:"test" in
  let root = Server.root server ~screen:0 in
  (server, conn, root)

let new_win ?(geom = rect 10 10 100 80) ?border ?override_redirect server conn parent =
  Server.create_window server conn ~parent ~geom ?border ?override_redirect ()

(* -------- tree and geometry -------- *)

let test_create_destroy () =
  let server, conn, root = fixture () in
  let w = new_win server conn root in
  check Alcotest.bool "exists" true (Server.window_exists server w);
  check Alcotest.bool "child of root" true
    (List.exists (Xid.equal w) (Server.children_of server root));
  Server.destroy_window server w;
  check Alcotest.bool "gone" false (Server.window_exists server w);
  check Alcotest.bool "removed from parent" false
    (List.exists (Xid.equal w) (Server.children_of server root))

let test_destroy_recursive () =
  let server, conn, root = fixture () in
  let parent = new_win server conn root in
  let child = new_win server conn parent in
  let grandchild = new_win server conn child in
  Server.destroy_window server parent;
  check Alcotest.bool "child gone" false (Server.window_exists server child);
  check Alcotest.bool "grandchild gone" false (Server.window_exists server grandchild)

let test_destroy_root_rejected () =
  let server, _conn, root = fixture () in
  Alcotest.check_raises "root is indestructible"
    (Invalid_argument "Server.destroy_window: root window") (fun () ->
      Server.destroy_window server root)

let test_stacking () =
  let server, conn, root = fixture () in
  let a = new_win server conn root in
  let b = new_win server conn root in
  let c = new_win server conn root in
  check (Alcotest.list Alcotest.int) "creation order bottom-to-top"
    [ Xid.to_int a; Xid.to_int b; Xid.to_int c ]
    (List.map Xid.to_int (Server.children_of server root));
  Server.raise_window server conn a;
  check (Alcotest.list Alcotest.int) "raised to top"
    [ Xid.to_int b; Xid.to_int c; Xid.to_int a ]
    (List.map Xid.to_int (Server.children_of server root));
  Server.lower_window server conn c;
  check (Alcotest.list Alcotest.int) "lowered to bottom"
    [ Xid.to_int c; Xid.to_int b; Xid.to_int a ]
    (List.map Xid.to_int (Server.children_of server root))

let test_translate_coordinates () =
  let server, conn, root = fixture () in
  let outer = new_win server conn root ~geom:(rect 100 50 200 200) ~border:2 in
  let inner = new_win server conn outer ~geom:(rect 10 20 50 50) ~border:1 in
  let p = Server.translate_coordinates server ~src:inner ~dst:root (Geom.point 0 0) in
  (* root + outer(100,50) + outer border 2 + inner(10,20) + inner border 1 *)
  check Alcotest.int "x" (100 + 2 + 10 + 1) p.px;
  check Alcotest.int "y" (50 + 2 + 20 + 1) p.py;
  let back = Server.translate_coordinates server ~src:root ~dst:inner p in
  check Alcotest.int "roundtrip x" 0 back.px;
  check Alcotest.int "roundtrip y" 0 back.py

let test_viewable () =
  let server, conn, root = fixture () in
  let a = new_win server conn root in
  let b = new_win server conn a in
  Server.map_window server conn b;
  check Alcotest.bool "parent unmapped blocks viewability" false
    (Server.is_viewable server b);
  Server.map_window server conn a;
  check Alcotest.bool "now viewable" true (Server.is_viewable server b)

(* -------- events: selection and delivery -------- *)

let test_map_notify_delivery () =
  let server, conn, root = fixture () in
  let observer = Server.connect server ~name:"observer" in
  let w = new_win server conn root in
  Server.select_input server observer w [ Event.Structure_notify ];
  Server.map_window server conn w;
  match Server.drain_events observer with
  | [ Event.Map_notify { window } ] ->
      check Alcotest.bool "right window" true (Xid.equal window w)
  | events -> Alcotest.failf "expected one MapNotify, got %d events" (List.length events)

let test_substructure_notify () =
  let server, conn, root = fixture () in
  let observer = Server.connect server ~name:"observer" in
  Server.select_input server observer root [ Event.Substructure_notify ];
  let w = new_win server conn root in
  Server.map_window server conn w;
  Server.unmap_window server conn w;
  let kinds =
    List.map
      (function
        | Event.Map_notify _ -> "map"
        | Event.Unmap_notify _ -> "unmap"
        | _ -> "other")
      (Server.drain_events observer)
  in
  check (Alcotest.list Alcotest.string) "parent sees both" [ "map"; "unmap" ] kinds

let test_redirect_intercepts_map () =
  let server, conn, root = fixture () in
  let wm = Server.connect server ~name:"wm" in
  Server.select_input server wm root [ Event.Substructure_redirect ];
  let w = new_win server conn root in
  Server.map_window server conn w;
  check Alcotest.bool "not actually mapped" false (Server.is_mapped server w);
  (match Server.drain_events wm with
  | [ Event.Map_request { window; parent } ] ->
      check Alcotest.bool "window" true (Xid.equal window w);
      check Alcotest.bool "parent" true (Xid.equal parent root)
  | _ -> Alcotest.fail "expected MapRequest");
  (* The redirect holder's own map goes through. *)
  Server.map_window server wm w;
  check Alcotest.bool "wm map applies" true (Server.is_mapped server w)

let test_redirect_override () =
  let server, conn, root = fixture () in
  let wm = Server.connect server ~name:"wm" in
  Server.select_input server wm root [ Event.Substructure_redirect ];
  let w = new_win server conn root ~override_redirect:true in
  Server.map_window server conn w;
  check Alcotest.bool "override bypasses redirect" true (Server.is_mapped server w);
  check Alcotest.int "no MapRequest" 0 (Server.pending wm)

let test_redirect_exclusive () =
  let server, _conn, root = fixture () in
  let wm1 = Server.connect server ~name:"wm1" in
  let wm2 = Server.connect server ~name:"wm2" in
  Server.select_input server wm1 root [ Event.Substructure_redirect ];
  (try
     Server.select_input server wm2 root [ Event.Substructure_redirect ];
     Alcotest.fail "second redirect should raise"
   with Server.Bad_access _ -> ());
  (* After the first disconnects, the second may claim it. *)
  Server.disconnect server wm1;
  Server.select_input server wm2 root [ Event.Substructure_redirect ]

let test_configure_redirect () =
  let server, conn, root = fixture () in
  let wm = Server.connect server ~name:"wm" in
  Server.select_input server wm root [ Event.Substructure_redirect ];
  let w = new_win server conn root ~geom:(rect 0 0 50 50) in
  Server.move_resize server conn w (rect 5 5 80 80);
  check Alcotest.bool "geometry unchanged" true
    (Geom.rect_equal (Server.geometry server w) (rect 0 0 50 50));
  match Server.drain_events wm with
  | [ Event.Configure_request { changes; _ } ] ->
      check (Alcotest.option Alcotest.int) "requested width" (Some 80) changes.cw
  | _ -> Alcotest.fail "expected ConfigureRequest"

let test_configure_notify_real () =
  let server, conn, root = fixture () in
  let w = new_win server conn root in
  Server.select_input server conn w [ Event.Structure_notify ];
  Server.move_resize server conn w (rect 7 8 90 91);
  match Server.drain_events conn with
  | [ Event.Configure_notify { geom; synthetic; _ } ] ->
      check Alcotest.bool "geometry" true (Geom.rect_equal geom (rect 7 8 90 91));
      check Alcotest.bool "not synthetic" false synthetic
  | _ -> Alcotest.fail "expected ConfigureNotify"

let test_property_roundtrip_and_notify () =
  let server, conn, root = fixture () in
  let observer = Server.connect server ~name:"observer" in
  let w = new_win server conn root in
  Server.select_input server observer w [ Event.Property_change ];
  Server.change_property server conn w ~name:Prop.wm_name (Prop.String "hello");
  (match Server.get_property server w ~name:Prop.wm_name with
  | Some (Prop.String "hello") -> ()
  | _ -> Alcotest.fail "property value");
  Server.delete_property server conn w ~name:Prop.wm_name;
  check Alcotest.bool "deleted" true (Server.get_property server w ~name:Prop.wm_name = None);
  let events = Server.drain_events observer in
  match events with
  | [ Event.Property_notify { deleted = false; _ }; Event.Property_notify { deleted = true; _ } ]
    -> ()
  | _ -> Alcotest.failf "expected 2 PropertyNotify, got %d" (List.length events)

let test_append_string_property () =
  let server, conn, root = fixture () in
  Server.append_string_property server conn root ~name:"X" "line1";
  Server.append_string_property server conn root ~name:"X" "line2";
  match Server.get_property server root ~name:"X" with
  | Some (Prop.String s) -> check Alcotest.string "appended" "line1\nline2" s
  | _ -> Alcotest.fail "missing"

(* -------- reparent and save-set -------- *)

let test_reparent () =
  let server, conn, root = fixture () in
  let a = new_win server conn root ~geom:(rect 10 10 50 50) in
  let b = new_win server conn root ~geom:(rect 100 100 80 80) in
  Server.map_window server conn a;
  Server.reparent_window server conn a ~new_parent:b ~pos:(Geom.point 5 5);
  check Alcotest.bool "new parent" true (Xid.equal (Server.parent_of server a) b);
  check Alcotest.bool "still mapped" true (Server.is_mapped server a);
  let g = Server.geometry server a in
  check Alcotest.int "x" 5 g.x;
  check Alcotest.int "size kept" 50 g.w

let test_save_set_rescues () =
  let server, client_conn, root = fixture () in
  let wm = Server.connect server ~name:"wm" in
  let cwin = new_win server client_conn root ~geom:(rect 30 40 50 50) in
  Server.map_window server client_conn cwin;
  (* WM frames the client. *)
  let frame = new_win server wm root ~geom:(rect 100 100 60 70) in
  Server.map_window server wm frame;
  Server.reparent_window server wm cwin ~new_parent:frame ~pos:(Geom.point 2 10);
  Server.add_to_save_set server wm cwin;
  (* WM dies: the client must come back to the root at its absolute spot. *)
  let abs_before = Server.root_geometry server cwin in
  Server.disconnect server wm;
  check Alcotest.bool "client survives" true (Server.window_exists server cwin);
  check Alcotest.bool "frame destroyed" false (Server.window_exists server frame);
  check Alcotest.bool "back on root" true (Xid.equal (Server.parent_of server cwin) root);
  check Alcotest.bool "mapped" true (Server.is_mapped server cwin);
  let g = Server.geometry server cwin in
  check Alcotest.int "abs x preserved" abs_before.x g.x;
  check Alcotest.int "abs y preserved" abs_before.y g.y

let test_disconnect_destroys_own () =
  let server, conn, root = fixture () in
  let w = new_win server conn root in
  Server.disconnect server conn;
  check Alcotest.bool "own window destroyed" false (Server.window_exists server w);
  ignore root

(* -------- pointer, input, grabs -------- *)

let test_window_at_pointer () =
  let server, conn, root = fixture () in
  let low = new_win server conn root ~geom:(rect 0 0 200 200) in
  let high = new_win server conn root ~geom:(rect 50 50 100 100) in
  Server.map_window server conn low;
  Server.map_window server conn high;
  Server.warp_pointer server ~screen:0 (Geom.point 60 60);
  check Alcotest.bool "topmost wins" true
    (Xid.equal (Server.window_at_pointer server) high);
  Server.warp_pointer server ~screen:0 (Geom.point 10 10);
  check Alcotest.bool "below region" true
    (Xid.equal (Server.window_at_pointer server) low);
  Server.warp_pointer server ~screen:0 (Geom.point 500 500);
  check Alcotest.bool "root fallback" true
    (Xid.equal (Server.window_at_pointer server) root)

let test_button_propagation () =
  let server, conn, root = fixture () in
  let outer = new_win server conn root ~geom:(rect 0 0 200 200) in
  let inner = new_win server conn outer ~geom:(rect 10 10 50 50) in
  Server.map_window server conn outer;
  Server.map_window server conn inner;
  (* Only the outer window selects for presses. *)
  Server.select_input server conn outer [ Event.Button_press_mask ];
  Server.warp_pointer server ~screen:0 (Geom.point 20 20);
  Server.press_button server 1;
  match
    List.filter
      (function Event.Button_press _ -> true | _ -> false)
      (Server.drain_events conn)
  with
  | [ Event.Button_press { window; pos; _ } ] ->
      check Alcotest.bool "delivered to ancestor" true (Xid.equal window outer);
      check Alcotest.int "outer-relative x" 20 pos.px
  | events -> Alcotest.failf "expected 1 ButtonPress, got %d" (List.length events)

let test_shape_hit_test () =
  let server, conn, root = fixture () in
  let w = new_win server conn root ~geom:(rect 0 0 100 100) in
  Server.map_window server conn w;
  Server.shape_set server conn w (Region.disc ~cx:50 ~cy:50 ~r:40);
  Server.warp_pointer server ~screen:0 (Geom.point 50 50);
  check Alcotest.bool "inside disc" true (Xid.equal (Server.window_at_pointer server) w);
  Server.warp_pointer server ~screen:0 (Geom.point 3 3);
  check Alcotest.bool "shaped-out corner misses" true
    (Xid.equal (Server.window_at_pointer server) root)

let test_pointer_grab () =
  let server, conn, root = fixture () in
  let other = Server.connect server ~name:"other" in
  let w = new_win server conn root ~geom:(rect 0 0 50 50) in
  let v = new_win server other root ~geom:(rect 100 100 50 50) in
  Server.map_window server conn w;
  Server.map_window server other v;
  Server.select_input server other v [ Event.Button_press_mask ];
  Server.grab_pointer server conn w;
  Server.warp_pointer server ~screen:0 (Geom.point 110 110);
  Server.press_button server 1;
  check Alcotest.int "grab steals the event" 0
    (List.length
       (List.filter
          (function Event.Button_press _ -> true | _ -> false)
          (Server.drain_events other)));
  (match
     List.filter
       (function Event.Button_press _ -> true | _ -> false)
       (Server.drain_events conn)
   with
  | [ Event.Button_press { window; pos; _ } ] ->
      check Alcotest.bool "grab window" true (Xid.equal window w);
      check Alcotest.int "grab-window-relative" 110 pos.px
  | _ -> Alcotest.fail "grabber should get the press");
  Server.ungrab_pointer server conn;
  check Alcotest.bool "ungrabbed" false (Server.pointer_grabbed server)

let test_enter_leave () =
  let server, conn, root = fixture () in
  let w = new_win server conn root ~geom:(rect 0 0 50 50) in
  Server.map_window server conn w;
  Server.select_input server conn w [ Event.Enter_leave_mask ];
  Server.warp_pointer server ~screen:0 (Geom.point 400 400);
  ignore (Server.drain_events conn);
  Server.warp_pointer server ~screen:0 (Geom.point 10 10);
  (match Server.drain_events conn with
  | [ Event.Enter_notify { window } ] ->
      check Alcotest.bool "enter" true (Xid.equal window w)
  | events -> Alcotest.failf "expected Enter, got %d events" (List.length events));
  Server.warp_pointer server ~screen:0 (Geom.point 400 400);
  match Server.drain_events conn with
  | [ Event.Leave_notify { window } ] ->
      check Alcotest.bool "leave" true (Xid.equal window w)
  | events -> Alcotest.failf "expected Leave, got %d events" (List.length events)

let test_crossing_chain () =
  (* Moving into a nested child generates Enter on every window down the
     chain; moving out generates Leaves bottom-up (X virtual crossings). *)
  let server, conn, root = fixture () in
  let outer = new_win server conn root ~geom:(rect 0 0 200 200) in
  let inner = new_win server conn outer ~geom:(rect 10 10 50 50) in
  Server.map_window server conn outer;
  Server.map_window server conn inner;
  Server.select_input server conn outer [ Event.Enter_leave_mask ];
  Server.select_input server conn inner [ Event.Enter_leave_mask ];
  Server.warp_pointer server ~screen:0 (Geom.point 500 500);
  ignore (Server.drain_events conn);
  Server.warp_pointer server ~screen:0 (Geom.point 20 20);
  let entered =
    List.filter_map
      (function Event.Enter_notify { window } -> Some window | _ -> None)
      (Server.drain_events conn)
  in
  check Alcotest.bool "outer then inner" true
    (List.map Xid.to_int entered = [ Xid.to_int outer; Xid.to_int inner ]);
  Server.warp_pointer server ~screen:0 (Geom.point 500 500);
  let left =
    List.filter_map
      (function Event.Leave_notify { window } -> Some window | _ -> None)
      (Server.drain_events conn)
  in
  check Alcotest.bool "inner then outer" true
    (List.map Xid.to_int left = [ Xid.to_int inner; Xid.to_int outer ])

let test_key_press () =
  let server, conn, root = fixture () in
  let w = new_win server conn root ~geom:(rect 0 0 50 50) in
  Server.map_window server conn w;
  Server.select_input server conn w [ Event.Key_press_mask ];
  Server.warp_pointer server ~screen:0 (Geom.point 5 5);
  ignore (Server.drain_events conn);
  Server.press_key server ~mods:(Swm_xlib.Keysym.mods ~shift:true ()) "Up";
  match Server.drain_events conn with
  | [ Event.Key_press { keysym; mods; _ } ] ->
      check Alcotest.string "keysym" "Up" keysym;
      check Alcotest.bool "shift" true mods.shift
  | _ -> Alcotest.fail "expected KeyPress"

let test_focus_events () =
  let server, conn, root = fixture () in
  let a = new_win server conn root in
  let b = new_win server conn root in
  Server.select_input server conn a [ Event.Focus_change_mask ];
  Server.select_input server conn b [ Event.Focus_change_mask ];
  Server.set_input_focus server conn a;
  (match Server.drain_events conn with
  | [ Event.Focus_in { window } ] ->
      check Alcotest.bool "focus in a" true (Xid.equal window a)
  | events -> Alcotest.failf "expected FocusIn, got %d events" (List.length events));
  Server.set_input_focus server conn b;
  (match Server.drain_events conn with
  | [ Event.Focus_out { window = o }; Event.Focus_in { window = i } ] ->
      check Alcotest.bool "out of a, into b" true (Xid.equal o a && Xid.equal i b)
  | events -> Alcotest.failf "expected Out+In, got %d events" (List.length events));
  (* Re-focusing the same window is silent. *)
  Server.set_input_focus server conn b;
  check Alcotest.int "no duplicate events" 0 (Server.pending conn)

let test_multi_screen () =
  let server =
    Server.create
      ~screens:
        [ { Server.size = (800, 600); monochrome = false };
          { Server.size = (1024, 768); monochrome = true } ]
      ()
  in
  check Alcotest.int "two screens" 2 (Server.screen_count server);
  check Alcotest.bool "different roots" false
    (Xid.equal (Server.root server ~screen:0) (Server.root server ~screen:1));
  check Alcotest.bool "mono flag" true (Server.screen_monochrome server ~screen:1);
  let w, h = Server.screen_size server ~screen:1 in
  check Alcotest.int "width" 1024 w;
  check Alcotest.int "height" 768 h

let test_send_event () =
  let server, conn, root = fixture () in
  let client = Server.connect server ~name:"client" in
  let w = new_win server client root in
  Server.send_event server conn ~dest:w
    (Event.Configure_notify
       { window = w; geom = rect 1 2 3 4; border = 0; synthetic = true });
  match Server.drain_events client with
  | [ Event.Configure_notify { synthetic = true; geom; _ } ] ->
      check Alcotest.int "x" 1 geom.x
  | _ -> Alcotest.fail "expected synthetic ConfigureNotify"

let test_atoms () =
  let server, _conn, _root = fixture () in
  let atoms = Swm_xlib.Server.atoms server in
  let a = Swm_xlib.Atom.intern atoms "WM_NAME" in
  let b = Swm_xlib.Atom.intern atoms "WM_NAME" in
  check Alcotest.bool "interning is stable" true (Swm_xlib.Atom.equal a b);
  check Alcotest.string "name back" "WM_NAME" (Swm_xlib.Atom.name atoms a);
  check Alcotest.bool "existing lookup" true
    (Swm_xlib.Atom.intern_existing atoms "WM_NAME" = Some a);
  check Alcotest.bool "missing lookup" true
    (Swm_xlib.Atom.intern_existing atoms "NOPE" = None)

let suite =
  [
    Alcotest.test_case "create and destroy" `Quick test_create_destroy;
    Alcotest.test_case "destroy is recursive" `Quick test_destroy_recursive;
    Alcotest.test_case "cannot destroy root" `Quick test_destroy_root_rejected;
    Alcotest.test_case "stacking raise/lower" `Quick test_stacking;
    Alcotest.test_case "coordinate translation" `Quick test_translate_coordinates;
    Alcotest.test_case "viewability" `Quick test_viewable;
    Alcotest.test_case "MapNotify delivery" `Quick test_map_notify_delivery;
    Alcotest.test_case "SubstructureNotify on parent" `Quick test_substructure_notify;
    Alcotest.test_case "redirect intercepts map" `Quick test_redirect_intercepts_map;
    Alcotest.test_case "override-redirect bypasses" `Quick test_redirect_override;
    Alcotest.test_case "redirect is exclusive" `Quick test_redirect_exclusive;
    Alcotest.test_case "redirect intercepts configure" `Quick test_configure_redirect;
    Alcotest.test_case "real ConfigureNotify" `Quick test_configure_notify_real;
    Alcotest.test_case "property change + notify" `Quick test_property_roundtrip_and_notify;
    Alcotest.test_case "append string property" `Quick test_append_string_property;
    Alcotest.test_case "reparent keeps map state" `Quick test_reparent;
    Alcotest.test_case "save-set rescue on disconnect" `Quick test_save_set_rescues;
    Alcotest.test_case "disconnect destroys own windows" `Quick test_disconnect_destroys_own;
    Alcotest.test_case "window_at_pointer stacking" `Quick test_window_at_pointer;
    Alcotest.test_case "button event propagation" `Quick test_button_propagation;
    Alcotest.test_case "shape-aware hit test" `Quick test_shape_hit_test;
    Alcotest.test_case "pointer grab" `Quick test_pointer_grab;
    Alcotest.test_case "enter/leave crossing" `Quick test_enter_leave;
    Alcotest.test_case "crossing ancestor chain" `Quick test_crossing_chain;
    Alcotest.test_case "key press with modifiers" `Quick test_key_press;
    Alcotest.test_case "focus events" `Quick test_focus_events;
    Alcotest.test_case "multiple screens" `Quick test_multi_screen;
    Alcotest.test_case "send_event" `Quick test_send_event;
    Alcotest.test_case "atom interning" `Quick test_atoms;
  ]
