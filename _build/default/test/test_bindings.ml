module Bindings = Swm_core.Bindings
module Event = Swm_xlib.Event
module Geom = Swm_xlib.Geom
module Keysym = Swm_xlib.Keysym
module Xid = Swm_xlib.Xid

let check = Alcotest.check

let parse_ok src =
  match Bindings.parse src with
  | Ok bs -> bs
  | Error msg -> Alcotest.failf "parse failed: %s" msg

(* The paper's example, verbatim modulo the resource-file continuations. *)
let paper_example =
  "<Btn1> : f.raise <Btn2> : f.save f.zoom <Key>Up : f.warpVertical(-50)"

let test_paper_example () =
  let bs = parse_ok paper_example in
  check Alcotest.int "three bindings" 3 (List.length bs);
  (match bs with
  | [ b1; b2; b3 ] ->
      (match b1.Bindings.pattern with
      | Bindings.Button (1, m) when Keysym.mod_equal m Keysym.no_mods -> ()
      | _ -> Alcotest.fail "b1 pattern");
      check Alcotest.int "b1 one function" 1 (List.length b1.funcs);
      check Alcotest.int "b2 two functions" 2 (List.length b2.funcs);
      (match b2.funcs with
      | [ { Bindings.fname = "f.save"; farg = None };
          { Bindings.fname = "f.zoom"; farg = None } ] -> ()
      | _ -> Alcotest.fail "b2 funcs");
      (match b3.Bindings.pattern with
      | Bindings.Key ("Up", _) -> ()
      | _ -> Alcotest.fail "b3 pattern");
      (match b3.funcs with
      | [ { Bindings.fname = "f.warpVertical"; farg = Some "-50" } ] -> ()
      | _ -> Alcotest.fail "b3 funcs")
  | _ -> Alcotest.fail "structure")

let test_newline_separated () =
  let bs = parse_ok "<Btn1> : f.raise\n<Btn3> : f.lower" in
  check Alcotest.int "two" 2 (List.length bs)

let test_modifiers () =
  let bs = parse_ok "Shift<Btn1> : f.raise Ctrl Meta<Btn2> : f.lower" in
  match bs with
  | [ b1; b2 ] ->
      (match b1.Bindings.pattern with
      | Bindings.Button (1, { shift = true; control = false; meta = false }) -> ()
      | _ -> Alcotest.fail "b1 mods");
      (match b2.Bindings.pattern with
      | Bindings.Button (2, { shift = false; control = true; meta = true }) -> ()
      | _ -> Alcotest.fail "b2 mods")
  | _ -> Alcotest.fail "structure"

let test_button_up () =
  let bs = parse_ok "<Btn1Up> : f.lower" in
  match bs with
  | [ { Bindings.pattern = Bindings.Button_up (1, _); _ } ] -> ()
  | _ -> Alcotest.fail "pattern"

let test_enter_leave () =
  let bs = parse_ok "<Enter> : f.raise <Leave> : f.lower" in
  match bs with
  | [ { Bindings.pattern = Bindings.Enter; _ };
      { Bindings.pattern = Bindings.Leave; _ } ] -> ()
  | _ -> Alcotest.fail "patterns"

let test_invocation_modes () =
  let bs =
    parse_ok
      "<Btn1> : f.iconify(multiple) <Btn2> : f.iconify(blob) <Btn3> : f.iconify(#$)"
  in
  let args =
    List.concat_map (fun b -> List.map (fun f -> f.Bindings.farg) b.Bindings.funcs) bs
  in
  check
    (Alcotest.list (Alcotest.option Alcotest.string))
    "args"
    [ Some "multiple"; Some "blob"; Some "#$" ]
    args

let test_arg_with_spaces () =
  let bs = parse_ok "<Btn1> : f.exec(xterm -geometry 80x24)" in
  match bs with
  | [ { Bindings.funcs = [ { farg = Some "xterm -geometry 80x24"; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "spaced argument"

let test_errors () =
  List.iter
    (fun bad ->
      match Bindings.parse bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [ "<Btn1>"; "f.raise"; "<Btn1> :"; "<Nope> : f.raise"; "<Key> : f.raise";
      "<Btn9> : f.raise" ]

let button_event button mods =
  Event.Button_press
    {
      window = Xid.of_int 1;
      button;
      mods;
      pos = Geom.point 0 0;
      root_pos = Geom.point 0 0;
    }

let test_matching () =
  let bs = parse_ok "<Btn1> : f.raise Shift<Btn1> : f.lower <Key>Up : f.pan" in
  let funcs_for event = List.map (fun f -> f.Bindings.fname) (Bindings.lookup bs event) in
  check (Alcotest.list Alcotest.string) "plain press" [ "f.raise" ]
    (funcs_for (button_event 1 Keysym.no_mods));
  check (Alcotest.list Alcotest.string) "shift press" [ "f.lower" ]
    (funcs_for (button_event 1 (Keysym.mods ~shift:true ())));
  check (Alcotest.list Alcotest.string) "unbound button" []
    (funcs_for (button_event 3 Keysym.no_mods));
  check (Alcotest.list Alcotest.string) "key" [ "f.pan" ]
    (funcs_for
       (Event.Key_press
          {
            window = Xid.of_int 1;
            keysym = "Up";
            mods = Keysym.no_mods;
            pos = Geom.point 0 0;
            root_pos = Geom.point 0 0;
          }))

let test_roundtrip () =
  let bs = parse_ok paper_example in
  let printed = Bindings.to_string bs in
  let bs2 = parse_ok printed in
  check Alcotest.int "same count" (List.length bs) (List.length bs2);
  check Alcotest.string "fixpoint" printed (Bindings.to_string bs2)

(* Property: any number of bindings and functions per binding parses. *)
let prop_many =
  QCheck2.Test.make ~name:"N bindings with M functions parse" ~count:100
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 10)) (fun (n, m) ->
      let funcs =
        String.concat " " (List.init m (fun i -> Printf.sprintf "f.fn%d(%d)" i i))
      in
      let src =
        String.concat "\n"
          (List.init n (fun i -> Printf.sprintf "<Btn%d> : %s" ((i mod 5) + 1) funcs))
      in
      match Bindings.parse src with
      | Ok bs ->
          List.length bs = n
          && List.for_all (fun b -> List.length b.Bindings.funcs = m) bs
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "paper example" `Quick test_paper_example;
    Alcotest.test_case "newline separated" `Quick test_newline_separated;
    Alcotest.test_case "modifiers" `Quick test_modifiers;
    Alcotest.test_case "button release pattern" `Quick test_button_up;
    Alcotest.test_case "enter/leave patterns" `Quick test_enter_leave;
    Alcotest.test_case "invocation-mode arguments" `Quick test_invocation_modes;
    Alcotest.test_case "argument with spaces" `Quick test_arg_with_spaces;
    Alcotest.test_case "syntax errors" `Quick test_errors;
    Alcotest.test_case "event matching" `Quick test_matching;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    QCheck_alcotest.to_alcotest prop_many;
  ]
