module Config = Swm_core.Config
module Server = Swm_xlib.Server
module Xrdb = Swm_xrdb.Xrdb

let check = Alcotest.check

let fixture resources =
  let server =
    Server.create
      ~screens:
        [ { Server.size = (1152, 900); monochrome = false };
          { Server.size = (1024, 768); monochrome = true } ]
      ()
  in
  let db = Xrdb.create () in
  (match Xrdb.load_string db resources with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "bad resources: %s" msg);
  Config.create db server

let scope ?(shaped = false) ?(sticky = false) instance class_ =
  { Config.instance; class_; shaped; sticky }

let test_per_screen () =
  let cfg =
    fixture
      {|
swm.color.screen0.panner: yes
swm.monochrome.screen1.panner: mono-only
|}
  in
  check (Alcotest.option Alcotest.string) "screen0" (Some "yes")
    (Config.query1 cfg ~screen:0 "panner");
  check (Alcotest.option Alcotest.string) "screen1" (Some "mono-only")
    (Config.query1 cfg ~screen:1 "panner")

let test_loose_applies_everywhere () =
  let cfg = fixture "swm*decoration: openLook\n" in
  check (Alcotest.option Alcotest.string) "screen0" (Some "openLook")
    (Config.query_client cfg ~screen:0 (scope "xterm" "XTerm") "decoration");
  check (Alcotest.option Alcotest.string) "screen1" (Some "openLook")
    (Config.query_client cfg ~screen:1 (scope "foo" "Bar") "decoration")

let test_specific_resource_paper_syntax () =
  (* The paper's full specific resource example. *)
  let cfg =
    fixture
      {|
swm*decoration: openLook
swm.color.screen0.XClock.xclock.decoration: noTitlePanel
|}
  in
  check (Alcotest.option Alcotest.string) "xclock gets specific"
    (Some "noTitlePanel")
    (Config.query_client cfg ~screen:0 (scope "xclock" "XClock") "decoration");
  check (Alcotest.option Alcotest.string) "others get default" (Some "openLook")
    (Config.query_client cfg ~screen:0 (scope "xterm" "XTerm") "decoration");
  check (Alcotest.option Alcotest.string) "other screen gets default"
    (Some "openLook")
    (Config.query_client cfg ~screen:1 (scope "xclock" "XClock") "decoration")

let test_class_vs_instance () =
  let cfg =
    fixture
      {|
swm*XTerm*decoration: forClass
swm*console*decoration: forInstance
|}
  in
  check (Alcotest.option Alcotest.string) "instance wins" (Some "forInstance")
    (Config.query_client cfg ~screen:0 (scope "console" "XTerm") "decoration");
  check (Alcotest.option Alcotest.string) "class fallback" (Some "forClass")
    (Config.query_client cfg ~screen:0 (scope "login" "XTerm") "decoration")

let test_shaped_prefix () =
  (* Paper §5: swm*shaped*decoration: shapeit *)
  let cfg =
    fixture
      {|
swm*decoration: openLook
swm*shaped*decoration: shapeit
|}
  in
  check (Alcotest.option Alcotest.string) "shaped client" (Some "shapeit")
    (Config.query_client cfg ~screen:0 (scope ~shaped:true "oclock" "Clock")
       "decoration");
  check (Alcotest.option Alcotest.string) "plain client" (Some "openLook")
    (Config.query_client cfg ~screen:0 (scope "xterm" "XTerm") "decoration")

let test_sticky_prefix () =
  (* Paper §6.2: swm*sticky*decoration: stickyPanel *)
  let cfg =
    fixture
      {|
swm*decoration: openLook
swm*sticky*decoration: stickyPanel
swm*xclock*sticky: True
|}
  in
  check (Alcotest.option Alcotest.string) "sticky decoration" (Some "stickyPanel")
    (Config.query_client cfg ~screen:0 (scope ~sticky:true "xclock" "XClock")
       "decoration");
  check Alcotest.bool "sticky resource" true
    (Config.query_client_bool cfg ~screen:0 (scope "xclock" "XClock") "sticky"
       ~default:false);
  check Alcotest.bool "non-sticky client" false
    (Config.query_client_bool cfg ~screen:0 (scope "xterm" "XTerm") "sticky"
       ~default:false)

let test_swm_over_Swm () =
  let cfg =
    fixture {|
Swm*panner: class-level
swm*panner: name-level
|}
  in
  check (Alcotest.option Alcotest.string) "swm has precedence" (Some "name-level")
    (Config.query1 cfg ~screen:0 "panner")

let test_panel_definition () =
  let cfg = fixture "Swm*panel.openLook: button a +0+0 panel client +0+1\n" in
  check Alcotest.bool "definition found" true
    (Config.panel_definition cfg ~screen:0 "openLook" <> None);
  check Alcotest.bool "missing panel" true
    (Config.panel_definition cfg ~screen:0 "nonesuch" = None)

let test_templates_load () =
  List.iter
    (fun (name, text) ->
      let db = Xrdb.create () in
      match Xrdb.load_string db text with
      | Ok n ->
          if n < 5 then Alcotest.failf "template %s suspiciously small (%d)" name n
      | Error msg -> Alcotest.failf "template %s does not parse: %s" name msg)
    Swm_core.Templates.names

let test_include_template_by_name () =
  (* A user configuration can include a shipped template and override it
     (paper §3: "include and then override defaults in a standard template
     file"); WIDTH/HEIGHT come from the display like xrdb's cpp defines. *)
  let server = Swm_xlib.Server.create () in
  let wm =
    Swm_core.Wm.start
      ~resources:
        [ "#include \"OpenLook+\"\nswm*decoration: titleOnly\n\
           Swm*panel.titleOnly: button name +C+0 panel client +0+1\n\
           swm*screenWidth: WIDTH\n#ifdef COLOR\nswm*colorful: yes\n#endif\n" ]
      server
  in
  let ctx = Swm_core.Wm.ctx wm in
  (* The template loaded (panner resource comes from it)... *)
  check (Alcotest.option Alcotest.string) "template included" (Some "True")
    (Config.query1 ctx.Swm_core.Ctx.cfg ~screen:0 "panner");
  (* ...the user's override wins... *)
  check (Alcotest.option Alcotest.string) "override wins" (Some "titleOnly")
    (Config.query_client ctx.Swm_core.Ctx.cfg ~screen:0 (scope "xterm" "XTerm")
       "decoration");
  (* ...WIDTH expands to the display width, and COLOR is defined because
     screen 0 is a colour screen. *)
  check (Alcotest.option Alcotest.string) "WIDTH define" (Some "1152")
    (Config.query1 ctx.Swm_core.Ctx.cfg ~screen:0 "screenWidth");
  check (Alcotest.option Alcotest.string) "COLOR defined" (Some "yes")
    (Config.query1 ctx.Swm_core.Ctx.cfg ~screen:0 "colorful")

let suite =
  [
    Alcotest.test_case "per-screen scoping" `Quick test_per_screen;
    Alcotest.test_case "#include template by name" `Quick
      test_include_template_by_name;
    Alcotest.test_case "loose binding spans screens" `Quick test_loose_applies_everywhere;
    Alcotest.test_case "specific resource (paper syntax)" `Quick
      test_specific_resource_paper_syntax;
    Alcotest.test_case "class vs instance" `Quick test_class_vs_instance;
    Alcotest.test_case "shaped prefix" `Quick test_shaped_prefix;
    Alcotest.test_case "sticky prefix" `Quick test_sticky_prefix;
    Alcotest.test_case "swm beats Swm" `Quick test_swm_over_Swm;
    Alcotest.test_case "panel definitions" `Quick test_panel_definition;
    Alcotest.test_case "shipped templates parse" `Quick test_templates_load;
  ]
