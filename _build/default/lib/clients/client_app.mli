(** A simulated X client application.

    Each app owns a connection, a top-level window with the standard ICCCM
    properties (WM_CLASS, WM_NAME, WM_COMMAND, WM_CLIENT_MACHINE,
    WM_NORMAL_HINTS, WM_HINTS), and a tiny event-processing loop that keeps
    track of where the client *believes* it is — fed only by the
    ConfigureNotify events it receives, exactly like a real toolkit.  That
    belief is what swm's SWM_ROOT/PPosition machinery exists to keep
    correct (paper §6.3). *)

type t

type spec = {
  instance : string;
  class_ : string;
  command : string;  (** the WM_COMMAND string *)
  host : string;  (** WM_CLIENT_MACHINE *)
  geom : Swm_xlib.Geom.rect;
  us_position : bool;
  p_position : bool;
  initial_state : Swm_xlib.Prop.wm_state;
  icon_position : Swm_xlib.Geom.point option;
  background : char;
  graceful_delete : bool;
      (** advertise WM_DELETE_WINDOW and close politely when asked *)
}

val spec :
  ?instance:string ->
  ?class_:string ->
  ?command:string ->
  ?host:string ->
  ?us_position:bool ->
  ?p_position:bool ->
  ?initial_state:Swm_xlib.Prop.wm_state ->
  ?icon_position:Swm_xlib.Geom.point ->
  ?background:char ->
  ?graceful_delete:bool ->
  Swm_xlib.Geom.rect ->
  spec
(** Defaults: instance ["app"], class ["App"], command derived from the
    instance and geometry, host ["localhost"], no position hints, Normal
    initial state. *)

val launch : Swm_xlib.Server.t -> ?screen:int -> spec -> t
(** Connect, create the top-level window with its properties, and map it
    (generating the MapRequest the WM will see). *)

val window : t -> Swm_xlib.Xid.t
val conn : t -> Swm_xlib.Server.conn
val app_spec : t -> spec

val process_events : t -> int
(** Drain the app's queue, updating its believed position; returns the
    number of events seen. *)

val believed_position : t -> Swm_xlib.Geom.point option
(** Root-relative position per the last (synthetic or real) ConfigureNotify
    the app received; [None] before any arrived. *)

val set_name : t -> string -> unit
val set_icon_name : t -> string -> unit
val resize_self : t -> int * int -> unit
(** Issue a ConfigureRequest for a new size, as an app would. *)

val move_self : t -> Swm_xlib.Geom.point -> unit
val withdraw : t -> unit
(** Unmap the top-level (ICCCM withdrawal). *)

val destroy : t -> unit

(** {1 Popup positioning (the paper's dialog-box problem)} *)

val popup_dialog : t -> use_swm_root:bool -> Swm_xlib.Xid.t * Swm_xlib.Geom.point
(** Create and map an override-redirect dialog centred on where the app
    believes its window is.  With [use_swm_root] the app positions the
    dialog relative to the window named by the SWM_ROOT property (the fixed
    toolkit of §6.3.1); without it, relative to the real root (the broken
    pre-swm behaviour).  Returns the dialog window and the position used. *)
