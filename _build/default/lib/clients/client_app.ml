module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event

type spec = {
  instance : string;
  class_ : string;
  command : string;
  host : string;
  geom : Geom.rect;
  us_position : bool;
  p_position : bool;
  initial_state : Prop.wm_state;
  icon_position : Geom.point option;
  background : char;
  graceful_delete : bool;
}

type t = {
  server : Server.t;
  conn : Server.conn;
  screen : int;
  win : Xid.t;
  sp : spec;
  mutable believed : Geom.point option;
  mutable popups : Xid.t list;
}

let spec ?(instance = "app") ?(class_ = "App") ?command ?(host = "localhost")
    ?(us_position = false) ?(p_position = false) ?(initial_state = Prop.Normal)
    ?icon_position ?(background = 'x') ?(graceful_delete = false) geom =
  let command =
    match command with
    | Some c -> c
    | None -> Printf.sprintf "%s -geometry %dx%d" instance geom.Geom.w geom.Geom.h
  in
  {
    instance;
    class_;
    command;
    host;
    geom;
    us_position;
    p_position;
    initial_state;
    icon_position;
    background;
    graceful_delete;
  }

let launch server ?(screen = 0) sp =
  let conn = Server.connect server ~name:sp.instance in
  let root = Server.root server ~screen in
  let win =
    Server.create_window server conn ~parent:root ~geom:sp.geom
      ~background:sp.background ~label:sp.instance ()
  in
  Server.change_property server conn win ~name:Prop.wm_class
    (Prop.Wm_class { instance = sp.instance; class_ = sp.class_ });
  Server.change_property server conn win ~name:Prop.wm_name (Prop.String sp.instance);
  Server.change_property server conn win ~name:Prop.wm_command (Prop.String sp.command);
  Server.change_property server conn win ~name:Prop.wm_client_machine
    (Prop.String sp.host);
  Server.change_property server conn win ~name:Prop.wm_normal_hints
    (Prop.Size_hints
       {
         Prop.default_size_hints with
         us_position = sp.us_position;
         p_position = sp.p_position;
       });
  Server.change_property server conn win ~name:Prop.wm_hints_name
    (Prop.Wm_hints
       {
         Prop.default_wm_hints with
         initial_state = sp.initial_state;
         icon_position = sp.icon_position;
       });
  if sp.graceful_delete then
    Server.change_property server conn win ~name:Prop.wm_protocols
      (Prop.Atom_list [ Prop.wm_delete_window ]);
  Server.select_input server conn win [ Event.Structure_notify ];
  Server.map_window server conn win;
  { server; conn; screen; win; sp; believed = None; popups = [] }

let window app = app.win
let conn app = app.conn
let app_spec app = app.sp

let process_events app =
  let events = Server.drain_events app.conn in
  List.iter
    (fun event ->
      match event with
      | Event.Client_message { window; name; data }
        when Xid.equal window app.win
             && String.equal name Prop.wm_protocols
             && String.equal data Prop.wm_delete_window
             && app.sp.graceful_delete ->
          (* A well-behaved client closes itself when asked. *)
          if Server.window_exists app.server app.win then
            Server.destroy_window app.server app.win
      | Event.Configure_notify { window; geom; synthetic; _ }
        when Xid.equal window app.win ->
          if synthetic then app.believed <- Some (Geom.point geom.x geom.y)
          else begin
            (* A real ConfigureNotify is parent-relative; a naive client
               takes it at face value, which is precisely the virtual
               desktop pitfall. *)
            app.believed <- Some (Geom.point geom.x geom.y)
          end
      | _ -> ())
    events;
  List.length events

let believed_position app = app.believed

let set_name app name =
  Server.change_property app.server app.conn app.win ~name:Prop.wm_name
    (Prop.String name)

let set_icon_name app name =
  Server.change_property app.server app.conn app.win ~name:Prop.wm_icon_name
    (Prop.String name)

let resize_self app (w, h) =
  Server.configure_window app.server app.conn app.win
    { Event.no_changes with cw = Some w; ch = Some h }

let move_self app pos =
  Server.configure_window app.server app.conn app.win
    { Event.no_changes with cx = Some pos.Geom.px; cy = Some pos.Geom.py }

let withdraw app = Server.unmap_window app.server app.conn app.win

let destroy app =
  List.iter
    (fun popup ->
      if Server.window_exists app.server popup then
        Server.destroy_window app.server popup)
    app.popups;
  if Server.window_exists app.server app.win then
    Server.destroy_window app.server app.win

let popup_dialog app ~use_swm_root =
  let reference_root =
    if use_swm_root then
      match Server.get_property app.server app.win ~name:Prop.swm_root with
      | Some (Prop.Window r) when Server.window_exists app.server r -> r
      | Some _ | None -> Server.root app.server ~screen:app.screen
    else Server.root app.server ~screen:app.screen
  in
  (* The app centres the dialog on where it believes its window is.  A
     correct toolkit asks the server for its position relative to the
     effective root; a naive one uses its remembered root coordinates. *)
  let base =
    if use_swm_root then
      Server.translate_coordinates app.server ~src:app.win ~dst:reference_root
        (Geom.point 0 0)
    else Option.value app.believed ~default:(Geom.point 0 0)
  in
  let dialog_geom =
    Geom.rect
      (base.px + (app.sp.geom.w / 4))
      (base.py + (app.sp.geom.h / 4))
      (app.sp.geom.w / 2) (app.sp.geom.h / 2)
  in
  (* Clamp like toolkits do: keep the dialog on the (believed) screen. *)
  let sw, sh = Server.screen_size app.server ~screen:app.screen in
  let clamped =
    if use_swm_root then dialog_geom
    else
      Geom.clamp_into dialog_geom ~within:(Geom.rect 0 0 sw sh)
  in
  let dialog =
    Server.create_window app.server app.conn ~parent:reference_root ~geom:clamped
      ~override_redirect:true ~background:'d' ~label:"dialog" ()
  in
  Server.map_window app.server app.conn dialog;
  app.popups <- dialog :: app.popups;
  (dialog, Geom.point clamped.x clamped.y)
