(** Stock simulated clients: the programs the paper mentions by name.

    Each returns a launched {!Client_app.t}; the shaped ones (oclock,
    xeyes) set a SHAPE bounding region on their window before mapping, so
    swm's [shaped*decoration] machinery kicks in (paper §5). *)

val xclock : Swm_xlib.Server.t -> ?screen:int -> ?at:Swm_xlib.Geom.point -> unit -> Client_app.t
(** 100x100, class [xclock.XClock] — the canonical sticky candidate. *)

val xterm :
  Swm_xlib.Server.t ->
  ?screen:int ->
  ?at:Swm_xlib.Geom.point ->
  ?instance:string ->
  unit ->
  Client_app.t
(** 484x316, class [xterm.XTerm]. *)

val xlogo : Swm_xlib.Server.t -> ?screen:int -> ?at:Swm_xlib.Geom.point -> unit -> Client_app.t

val oclock : Swm_xlib.Server.t -> ?screen:int -> ?at:Swm_xlib.Geom.point -> unit -> Client_app.t
(** Round (shaped) clock, class [oclock.Clock]. *)

val xeyes : Swm_xlib.Server.t -> ?screen:int -> ?at:Swm_xlib.Geom.point -> unit -> Client_app.t
(** Two discs (shaped), class [xeyes.XEyes]. *)

val xbiff : Swm_xlib.Server.t -> ?screen:int -> ?at:Swm_xlib.Geom.point -> unit -> Client_app.t
(** Mail notifier, 48x48 — the other stock sticky-window example. *)
