lib/clients/workload.mli: Client_app Swm_xlib
