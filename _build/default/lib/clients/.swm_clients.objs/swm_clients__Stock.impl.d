lib/clients/stock.ml: Client_app Swm_xlib
