lib/clients/client_app.ml: List Option Printf String Swm_xlib
