lib/clients/stock.mli: Client_app Swm_xlib
