lib/clients/workload.ml: Array Client_app List Printf Random Swm_xlib
