lib/clients/client_app.mli: Swm_xlib
