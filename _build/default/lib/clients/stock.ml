module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Region = Swm_xlib.Region

let place ?at (w, h) =
  match at with
  | Some p -> Geom.rect p.Geom.px p.Geom.py w h
  | None -> Geom.rect 0 0 w h

let launch_simple server ?(screen = 0) ?at ~instance ~class_ ~size ~background () =
  let geom = place ?at size in
  Client_app.launch server ~screen
    (Client_app.spec ~instance ~class_ ~background
       ~us_position:(at <> None) geom)

let xclock server ?screen ?at () =
  launch_simple server ?screen ?at ~instance:"xclock" ~class_:"XClock"
    ~size:(100, 100) ~background:'c' ()

let xterm server ?screen ?at ?(instance = "xterm") () =
  launch_simple server ?screen ?at ~instance ~class_:"XTerm" ~size:(484, 316)
    ~background:'t' ()

let xlogo server ?screen ?at () =
  launch_simple server ?screen ?at ~instance:"xlogo" ~class_:"XLogo" ~size:(64, 64)
    ~background:'l' ()

let xbiff server ?screen ?at () =
  launch_simple server ?screen ?at ~instance:"xbiff" ~class_:"XBiff" ~size:(48, 48)
    ~background:'b' ()

let launch_shaped server ?(screen = 0) ?at ~instance ~class_ ~size ~background ~shape
    () =
  let geom = place ?at size in
  let app =
    Client_app.launch server ~screen
      (Client_app.spec ~instance ~class_ ~background ~us_position:(at <> None) geom)
  in
  Server.shape_set server (Client_app.conn app) (Client_app.window app) shape;
  app

let oclock server ?screen ?at () =
  let size = (120, 120) in
  let r = fst size / 2 in
  launch_shaped server ?screen ?at ~instance:"oclock" ~class_:"Clock" ~size
    ~background:'o'
    ~shape:(Region.disc ~cx:r ~cy:r ~r)
    ()

let xeyes server ?screen ?at () =
  let size = (160, 100) in
  let eye r cx cy = Region.disc ~cx ~cy ~r in
  let shape = Region.union (eye 50 40 50) (eye 50 120 50) in
  launch_shaped server ?screen ?at ~instance:"xeyes" ~class_:"XEyes" ~size
    ~background:'e' ~shape ()
