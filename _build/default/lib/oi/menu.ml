module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom

type t = { menu_obj : Wobj.t; tk : Wobj.toolkit; mutable posted : bool }

let create tk menu_obj =
  let server = Wobj.toolkit_server tk in
  let root = Server.root server ~screen:(Wobj.toolkit_screen tk) in
  if not (Wobj.is_realized menu_obj) then begin
    (* Menus bypass the window manager. *)
    Wobj.realize ~override_redirect:true menu_obj ~parent_window:root
      ~at:(Geom.point 0 0);
    Server.unmap_window server (Wobj.toolkit_conn tk) (Wobj.window menu_obj)
  end;
  { menu_obj; tk; posted = false }

let obj menu = menu.menu_obj

let post menu ~at =
  let server = Wobj.toolkit_server menu.tk in
  let conn = Wobj.toolkit_conn menu.tk in
  let win = Wobj.window menu.menu_obj in
  let geom = Wobj.geometry menu.menu_obj in
  Server.move_resize server conn win { geom with Geom.x = at.Geom.px; y = at.Geom.py };
  Server.raise_window server conn win;
  Server.map_window server conn win;
  menu.posted <- true

let unpost menu =
  if menu.posted then begin
    let server = Wobj.toolkit_server menu.tk in
    Server.unmap_window server (Wobj.toolkit_conn menu.tk) (Wobj.window menu.menu_obj);
    menu.posted <- false
  end

let is_posted menu = menu.posted

let destroy menu =
  unpost menu;
  Wobj.unrealize menu.menu_obj
