module Geom = Swm_xlib.Geom

type item = { item_kind : Wobj.kind; item_name : string; position : Geom.spec }

let kind_of_string = function
  | "panel" -> Some Wobj.Panel
  | "button" -> Some Wobj.Button
  | "text" -> Some Wobj.Text
  | "menu" -> Some Wobj.Menu
  | _ -> None

let tokens s =
  String.split_on_char ' ' (String.map (function '\n' | '\t' -> ' ' | c -> c) s)
  |> List.filter (fun t -> t <> "")

let parse spec =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | [ t ] -> Error (Printf.sprintf "incomplete item near %S" t)
    | [ t; n ] -> Error (Printf.sprintf "missing position for %s %s" t n)
    | t :: n :: p :: rest -> (
        match kind_of_string t with
        | None -> Error (Printf.sprintf "unknown object type %S" t)
        | Some item_kind -> (
            match Geom.parse p with
            | Error msg -> Error (Printf.sprintf "bad position for %s: %s" n msg)
            | Ok position -> loop ({ item_kind; item_name = n; position } :: acc) rest))
  in
  loop [] (tokens spec)

let build_from_spec tk ~lookup ~kind ~name ~spec =
  let rec go ~visited ~kind ~name ~spec =
    match parse spec with
    | Error msg -> Error (Printf.sprintf "panel %S: %s" name msg)
    | Ok items ->
        let root = Wobj.make tk kind ~name in
        let rec add_items = function
          | [] -> Ok root
          | { item_kind; item_name; position } :: rest -> (
              let child_result =
                match item_kind with
                | Wobj.Panel | Wobj.Menu -> (
                    if List.mem item_name visited then
                      Error (Printf.sprintf "panel definition cycle at %S" item_name)
                    else
                      match lookup item_name with
                      | Some child_spec ->
                          go ~visited:(item_name :: visited) ~kind:item_kind
                            ~name:item_name ~spec:child_spec
                      | None -> Ok (Wobj.make tk item_kind ~name:item_name))
                | Wobj.Button | Wobj.Text ->
                    Ok (Wobj.make tk item_kind ~name:item_name)
              in
              match child_result with
              | Error _ as e -> e
              | Ok child ->
                  Wobj.add_child root child ~position;
                  add_items rest)
        in
        add_items items
  in
  go ~visited:[ name ] ~kind ~name ~spec

let build tk ~lookup ~kind ~name =
  match lookup name with
  | None -> Error (Printf.sprintf "no definition for %s %S" (Wobj.kind_name kind) name)
  | Some spec -> build_from_spec tk ~lookup ~kind ~name ~spec
