(** Building object trees from panel definitions in the resource database.

    A panel definition (paper §4.1) is a whitespace-separated list of
    [object-type object-name position] triples:

    {v
Swm*panel.openLook: \
    button pulldown +0+0 \
    button name     +C+0 \
    button nail     -0+0 \
    panel  client   +0+1
    v}

    Nested panels are resolved by looking their own definition up through
    [lookup]; a nested panel without a definition (like the special [client]
    panel) becomes an empty panel. *)

type item = { item_kind : Wobj.kind; item_name : string; position : Swm_xlib.Geom.spec }

val parse : string -> (item list, string) result
(** Parse the triples of a definition string. *)

val build :
  Wobj.toolkit ->
  lookup:(string -> string option) ->
  kind:Wobj.kind ->
  name:string ->
  (Wobj.t, string) result
(** [build tk ~lookup ~kind ~name] constructs the (unrealized) object tree
    for panel/menu [name], resolving nested definitions through [lookup]
    (typically [fun n -> query "panel.<n>"]).  Cycles are reported as
    errors rather than looping. *)

val build_from_spec :
  Wobj.toolkit ->
  lookup:(string -> string option) ->
  kind:Wobj.kind ->
  name:string ->
  spec:string ->
  (Wobj.t, string) result
(** Like {!build} but with the root definition supplied directly. *)
