(** The OI toolkit: generic window objects.

    swm deals with four basic object kinds — panels, buttons, text objects
    and menus (paper §4).  All four share one representation, so any object
    "can be treated as a generic base class object when dealing with
    attribute settings" (§2): attributes (colour, cursor, bindings, shape)
    are looked up uniformly through the X resource database, and layout
    treats children generically.

    Objects form trees; each realized object owns one X window.  Panels
    arrange children in rows, with the column/row position of each child
    taken from an X geometry string (["+0+1"] = column 0, row 1; ["+C+0"] =
    centred in row 0; ["-0+0"] = rightmost in row 0). *)

type kind = Panel | Button | Text | Menu

val kind_name : kind -> string
(** The resource component: ["panel"], ["button"], ["text"], ["menu"]. *)

val kind_class : kind -> string

type toolkit
type t

(** {1 Toolkit} *)

val create_toolkit :
  server:Swm_xlib.Server.t ->
  conn:Swm_xlib.Server.conn ->
  screen:int ->
  query:(names:string list -> classes:string list -> string option) ->
  toolkit
(** [query] resolves an attribute path (names/classes *below* whatever
    application- and screen-level prefix the WM established) against the
    resource database. *)

val toolkit_server : toolkit -> Swm_xlib.Server.t
val toolkit_conn : toolkit -> Swm_xlib.Server.conn
val toolkit_screen : toolkit -> int

val char_cell : toolkit -> int * int
(** Pixel size of one character of the (simulated) font. *)

val find_object : toolkit -> Swm_xlib.Xid.t -> t option
(** Dispatch: the object owning that X window, if any. *)

val find_objects_by_name : toolkit -> string -> t list
(** All realized objects with that name (names need not be unique: every
    openLook decoration has a [name] button).  Supports the dynamic
    appearance/bindings functions (paper §4.2). *)

val iter_objects : toolkit -> (t -> unit) -> unit

(** {1 Objects} *)

val make : toolkit -> kind -> name:string -> t
val name : t -> string
val kind : t -> kind
val toolkit : t -> toolkit
val parent : t -> t option
val children : t -> t list
val window : t -> Swm_xlib.Xid.t
(** Raises [Invalid_argument] if the object is not realized. *)

val is_realized : t -> bool

val add_child : t -> t -> position:Swm_xlib.Geom.spec -> unit
(** Attach a child to a panel/menu with its row/column position spec.
    Raises [Invalid_argument] when the parent cannot hold children. *)

val remove_child : t -> t -> unit
val find_descendant : t -> name:string -> t option

(** {1 Attributes} *)

val set_attr : t -> string -> string -> unit
(** Local override, shadowing the resource database. *)

val attr : t -> string -> string option
(** [attr obj "bindings"] — local overrides first, then the resource
    database under path [<kind>.<name>.<attr>]. *)

val attr_bool : t -> string -> default:bool -> bool

val set_label : t -> string -> unit
(** Button/text content; triggers re-layout of the enclosing tree when the
    natural size changes (dynamic appearance, §4.2). *)

val label : t -> string

val set_external_size : t -> (int * int) option -> unit
(** Impose a size from outside the layout (used for the special [client]
    panel, whose size is the client window's). *)

val natural_size : t -> int * int

(** {1 Realization and layout} *)

val realize :
  ?override_redirect:bool ->
  t ->
  parent_window:Swm_xlib.Xid.t ->
  at:Swm_xlib.Geom.point ->
  unit
(** Create the X windows for the object tree, lay children out, apply shape
    attributes, and register every window for dispatch.
    [override_redirect] (top-level window only) bypasses the window
    manager — used for menus. *)

val unrealize : t -> unit
val relayout : t -> unit
(** Recompute the layout of a realized tree (e.g. after a label change or a
    client resize) and reconfigure the windows. *)

val geometry : t -> Swm_xlib.Geom.rect
(** Parent-window-relative geometry of the realized object. *)

val map : t -> unit
val unmap : t -> unit

(** {1 Action plumbing} *)

val set_handler : t -> (t -> Swm_xlib.Event.t -> unit) option -> unit
(** Invoked by the WM's dispatch loop when a device event lands on the
    object's window. *)

val handler : t -> (t -> Swm_xlib.Event.t -> unit) option
