(** Pop-up menus.

    A menu is an object tree (usually buttons stacked in rows) realized as an
    override-redirect top-level window, mapped at the pointer when posted and
    unmapped when unposted. *)

type t

val create : Wobj.toolkit -> Wobj.t -> t
(** Wrap an object tree (built e.g. by {!Panel_spec.build} with kind
    [Menu]) as a poppable menu.  Realizes it, unmapped, on the toolkit's
    screen root. *)

val obj : t -> Wobj.t
val post : t -> at:Swm_xlib.Geom.point -> unit
val unpost : t -> unit
val is_posted : t -> bool
val destroy : t -> unit
