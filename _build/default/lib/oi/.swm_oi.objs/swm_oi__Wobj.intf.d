lib/oi/wobj.mli: Swm_xlib
