lib/oi/menu.ml: Swm_xlib Wobj
