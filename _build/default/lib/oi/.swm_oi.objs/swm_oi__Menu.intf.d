lib/oi/menu.mli: Swm_xlib Wobj
