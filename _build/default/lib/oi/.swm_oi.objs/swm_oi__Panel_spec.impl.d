lib/oi/panel_spec.ml: List Printf String Swm_xlib Wobj
