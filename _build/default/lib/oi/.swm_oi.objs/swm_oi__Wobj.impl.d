lib/oi/wobj.ml: Hashtbl List Option Printf String Swm_xlib
