lib/oi/panel_spec.mli: Swm_xlib Wobj
