module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Event = Swm_xlib.Event
module Region = Swm_xlib.Region

type kind = Panel | Button | Text | Menu

let kind_name = function
  | Panel -> "panel"
  | Button -> "button"
  | Text -> "text"
  | Menu -> "menu"

let kind_class = function
  | Panel -> "Panel"
  | Button -> "Button"
  | Text -> "Text"
  | Menu -> "Menu"

type toolkit = {
  server : Server.t;
  conn : Server.conn;
  screen : int;
  query : names:string list -> classes:string list -> string option;
  registry : t Xid.Tbl.t;
  char_w : int;
  char_h : int;
  pad : int;
}

and t = {
  tk : toolkit;
  obj_kind : kind;
  obj_name : string;
  overrides : (string, string) Hashtbl.t;
  mutable obj_label : string;
  mutable obj_parent : t option;
  mutable obj_children : (t * Geom.spec) list;
  mutable win : Xid.t; (* Xid.none until realized *)
  mutable geom : Geom.rect; (* parent-window relative, valid when realized *)
  mutable external_size : (int * int) option;
  mutable handler : (t -> Event.t -> unit) option;
}

let create_toolkit ~server ~conn ~screen ~query =
  {
    server;
    conn;
    screen;
    query;
    registry = Xid.Tbl.create 64;
    char_w = 8;
    char_h = 16;
    pad = 4;
  }

let toolkit_server tk = tk.server
let toolkit_conn tk = tk.conn
let toolkit_screen tk = tk.screen
let char_cell tk = (tk.char_w, tk.char_h)
let find_object tk xid = Xid.Tbl.find_opt tk.registry xid

let iter_objects tk f = Xid.Tbl.iter (fun _ obj -> f obj) tk.registry

let find_objects_by_name tk name =
  Xid.Tbl.fold
    (fun _ obj acc -> if String.equal obj.obj_name name then obj :: acc else acc)
    tk.registry []

let make tk obj_kind ~name =
  {
    tk;
    obj_kind;
    obj_name = name;
    overrides = Hashtbl.create 4;
    obj_label = (match obj_kind with Button | Text -> name | Panel | Menu -> "");
    obj_parent = None;
    obj_children = [];
    win = Xid.none;
    geom = Geom.rect 0 0 0 0;
    external_size = None;
    handler = None;
  }

let name obj = obj.obj_name
let kind obj = obj.obj_kind
let toolkit obj = obj.tk
let parent obj = obj.obj_parent
let children obj = List.map fst obj.obj_children

let window obj =
  if Xid.is_none obj.win then
    invalid_arg (Printf.sprintf "Wobj.window: %S not realized" obj.obj_name)
  else obj.win

let is_realized obj = not (Xid.is_none obj.win)

let add_child parent_obj child ~position =
  (match parent_obj.obj_kind with
  | Panel | Menu -> ()
  | Button | Text ->
      invalid_arg
        (Printf.sprintf "Wobj.add_child: %s %S cannot hold children"
           (kind_name parent_obj.obj_kind) parent_obj.obj_name));
  child.obj_parent <- Some parent_obj;
  parent_obj.obj_children <- parent_obj.obj_children @ [ (child, position) ]

let remove_child parent_obj child =
  parent_obj.obj_children <-
    List.filter (fun (c, _) -> c != child) parent_obj.obj_children;
  child.obj_parent <- None

let rec find_descendant obj ~name =
  if String.equal obj.obj_name name then Some obj
  else
    List.fold_left
      (fun acc (child, _) ->
        match acc with Some _ -> acc | None -> find_descendant child ~name)
      None obj.obj_children

(* -------- attributes -------- *)

let capitalize = String.capitalize_ascii

let set_attr obj key value = Hashtbl.replace obj.overrides key value

let attr obj key =
  match Hashtbl.find_opt obj.overrides key with
  | Some v -> Some v
  | None ->
      obj.tk.query
        ~names:[ kind_name obj.obj_kind; obj.obj_name; key ]
        ~classes:[ kind_class obj.obj_kind; capitalize obj.obj_name; capitalize key ]

let attr_bool obj key ~default =
  match attr obj key with
  | None -> default
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "true" | "yes" | "on" | "1" -> true
      | "false" | "no" | "off" | "0" -> false
      | _ -> default)

let label obj = obj.obj_label
let set_external_size obj size = obj.external_size <- size

(* -------- natural size -------- *)

let border_width = 1
let row_gap = 2
let col_gap = 2

(* Row index a child participates in; From_end rows are resolved against the
   current maximum explicit row. *)
let row_of_spec (spec : Geom.spec) ~max_row =
  match spec.yoff with
  | Some (Geom.From_start r) -> r
  | Some (Geom.From_end r) -> max 0 (max_row - r)
  | Some Geom.Centered | None -> 0

let explicit_rows children =
  List.fold_left
    (fun acc (_, (spec : Geom.spec)) ->
      match spec.yoff with Some (Geom.From_start r) -> max acc r | _ -> acc)
    0 children

let rec natural_size obj =
  match obj.external_size with
  | Some size -> size
  | None -> (
      match obj.obj_kind with
      | Button | Text ->
          let tk = obj.tk in
          let text_w = String.length obj.obj_label * tk.char_w in
          let w =
            match attr obj "width" with
            | Some v -> ( match int_of_string_opt v with Some n -> n | None -> text_w)
            | None -> text_w
          in
          (w + (2 * tk.pad), tk.char_h + (2 * tk.pad))
      | Panel | Menu ->
          let rects = layout_children obj in
          let bounds =
            List.fold_left
              (fun acc (_, r) ->
                match acc with
                | None -> Some r
                | Some b -> Some (Geom.union_bounds b r))
              None rects
          in
          (match bounds with
          | None -> (2 * obj.tk.pad, 2 * obj.tk.pad)
          | Some b -> (b.x + b.w + obj.tk.pad, b.y + b.h + obj.tk.pad)))

(* Compute child rectangles (panel-interior coordinates, of each child's
   border corner).  Two passes: first natural sizes and row structure, then
   positions (left-packed, right-packed and centred columns). *)
and layout_children obj =
  let tk = obj.tk in
  let children = obj.obj_children in
  if children = [] then []
  else begin
    let max_row = explicit_rows children in
    let sized =
      List.map
        (fun (child, (spec : Geom.spec)) ->
          let nw, nh = natural_size child in
          let w = Option.value spec.width ~default:nw in
          let h = Option.value spec.height ~default:nh in
          (child, spec, w + (2 * border_width), h + (2 * border_width)))
        children
    in
    let row_members r =
      List.filter (fun (_, spec, _, _) -> row_of_spec spec ~max_row = r) sized
    in
    let rows = List.init (max_row + 1) row_members in
    let row_height members =
      List.fold_left (fun acc (_, _, _, h) -> max acc h) 0 members
    in
    (* Width needed by a row when packed with gaps. *)
    let row_width members =
      match members with
      | [] -> 0
      | _ ->
          List.fold_left (fun acc (_, _, w, _) -> acc + w + col_gap) (-col_gap) members
    in
    let panel_w =
      List.fold_left (fun acc members -> max acc (row_width members)) 0 rows
      + (2 * tk.pad)
    in
    (* Menus stack items full-width. *)
    let panel_w =
      if obj.obj_kind = Menu then
        List.fold_left (fun acc (_, _, w, _) -> max acc (w + (2 * tk.pad))) panel_w sized
      else panel_w
    in
    let results = ref [] in
    let y = ref tk.pad in
    List.iter
      (fun members ->
        let h = row_height members in
        let col_key (_, (spec : Geom.spec), _, _) =
          match spec.xoff with
          | Some (Geom.From_start c) -> c
          | Some (Geom.From_end c) -> c
          | Some Geom.Centered | None -> 0
        in
        let lefts =
          List.filter
            (fun (_, (s : Geom.spec), _, _) ->
              match s.xoff with Some (Geom.From_start _) | None -> true | _ -> false)
            members
          |> List.sort (fun a b -> compare (col_key a) (col_key b))
        in
        let rights =
          List.filter
            (fun (_, (s : Geom.spec), _, _) ->
              match s.xoff with Some (Geom.From_end _) -> true | _ -> false)
            members
          |> List.sort (fun a b -> compare (col_key a) (col_key b))
        in
        let centers =
          List.filter
            (fun (_, (s : Geom.spec), _, _) ->
              match s.xoff with Some Geom.Centered -> true | _ -> false)
            members
        in
        let x = ref tk.pad in
        List.iter
          (fun (child, _, w, ch) ->
            results := (child, Geom.rect !x !y w ch) :: !results;
            x := !x + w + col_gap)
          lefts;
        let rx = ref (panel_w - tk.pad) in
        List.iter
          (fun (child, _, w, ch) ->
            rx := !rx - w;
            results := (child, Geom.rect !rx !y w ch) :: !results;
            rx := !rx - col_gap)
          rights;
        List.iter
          (fun (child, _, w, ch) ->
            results := (child, Geom.rect ((panel_w - w) / 2) !y w ch) :: !results)
          centers;
        if members <> [] then y := !y + h + row_gap)
      rows;
    List.rev !results
  end

(* -------- realization -------- *)

let background_char obj =
  match attr obj "background" with
  | Some s when s <> "" -> Some s.[0]
  | Some _ | None -> (
      match obj.obj_kind with
      | Panel | Menu -> Some ' '
      | Button -> Some ' '
      | Text -> Some ' ')

let select_masks =
  [
    Event.Button_press_mask;
    Event.Button_release_mask;
    Event.Key_press_mask;
    Event.Enter_leave_mask;
    Event.Exposure_mask;
  ]

let apply_shape obj =
  if attr_bool obj "shape" ~default:false && is_realized obj then begin
    match attr obj "shapeMask" with
    | Some _ ->
        (* Named masks stand in for bitmap files: a disc the size of the
           object, matching the oclock-style use in the paper. *)
        let w, h = (obj.geom.w, obj.geom.h) in
        let r = min w h / 2 in
        Server.shape_set obj.tk.server obj.tk.conn obj.win
          (Region.disc ~cx:(w / 2) ~cy:(h / 2) ~r)
    | None ->
        (* No mask: shape the panel to contain its children (paper §5). *)
        let region =
          List.fold_left
            (fun acc (child, _) ->
              if is_realized child then
                Region.union acc
                  (Region.of_rect
                     (Geom.rect child.geom.x child.geom.y
                        (child.geom.w + (2 * border_width))
                        (child.geom.h + (2 * border_width))))
              else acc)
            Region.empty obj.obj_children
        in
        if not (Region.is_empty region) then
          Server.shape_set obj.tk.server obj.tk.conn obj.win region
  end

let rec realize ?(override_redirect = false) obj ~parent_window ~at =
  let tk = obj.tk in
  (* Buttons may carry a bitmap image attribute instead of text: a stock
     bitmap renders as character art; unknown names show bracketed. *)
  (match obj.obj_kind with
  | Button | Text -> (
      match attr obj "image" with
      | Some image when String.equal obj.obj_label obj.obj_name -> (
          match Swm_xlib.Bitmap.find image with
          | Some _ -> obj.obj_label <- ""
          | None -> obj.obj_label <- "[" ^ image ^ "]")
      | Some _ | None -> ())
  | Panel | Menu -> ());
  let nw, nh = natural_size obj in
  let geom = Geom.rect at.Geom.px at.Geom.py nw nh in
  obj.win <-
    Server.create_window tk.server tk.conn ~parent:parent_window ~geom
      ~border:border_width ~override_redirect ?background:(background_char obj)
      ?label:
        (match obj.obj_kind with
        | Button | Text -> Some obj.obj_label
        | Panel | Menu -> None)
      ();
  obj.geom <- geom;
  (match (obj.obj_kind, attr obj "image") with
  | (Button | Text), Some image -> (
      match Swm_xlib.Bitmap.find image with
      | Some bitmap -> Server.set_art tk.server obj.win (Some bitmap.rows)
      | None -> ())
  | _ -> ());
  Xid.Tbl.replace tk.registry obj.win obj;
  Server.select_input tk.server tk.conn obj.win select_masks;
  let placed = layout_children obj in
  List.iter
    (fun (child, rect) ->
      realize child ~parent_window:obj.win ~at:(Geom.point rect.Geom.x rect.Geom.y);
      Server.map_window tk.server tk.conn child.win)
    placed;
  apply_shape obj

let rec unrealize obj =
  List.iter (fun (child, _) -> unrealize child) obj.obj_children;
  if is_realized obj then begin
    Xid.Tbl.remove obj.tk.registry obj.win;
    if Server.window_exists obj.tk.server obj.win then
      Server.destroy_window obj.tk.server obj.win;
    obj.win <- Xid.none
  end

(* Lay out a realized subtree whose own size has already been decided (by
   the parent's layout, or by [relayout] for the root). *)
let rec relayout_tree obj =
  if is_realized obj then begin
    let tk = obj.tk in
    let placed = layout_children obj in
    List.iter
      (fun (child, rect) ->
        if is_realized child then begin
          (* [layout_children] rects include the child's border. *)
          let interior =
            Geom.rect rect.Geom.x rect.Geom.y
              (rect.Geom.w - (2 * border_width))
              (rect.Geom.h - (2 * border_width))
          in
          if not (Geom.rect_equal interior child.geom) then begin
            Server.move_resize tk.server tk.conn child.win interior;
            child.geom <- interior
          end;
          relayout_tree child
        end)
      placed;
    apply_shape obj
  end

let relayout obj =
  if is_realized obj then begin
    let nw, nh = natural_size obj in
    let geom = { obj.geom with Geom.w = nw; h = nh } in
    if not (Geom.rect_equal geom obj.geom) then begin
      Server.move_resize obj.tk.server obj.tk.conn obj.win geom;
      obj.geom <- geom
    end;
    relayout_tree obj
  end

let set_label obj text =
  obj.obj_label <- text;
  if is_realized obj then begin
    Server.set_label obj.tk.server obj.win
      (match obj.obj_kind with Button | Text -> Some text | Panel | Menu -> None);
    (* Propagate the size change to the top of the realized tree. *)
    let rec top o = match o.obj_parent with Some p when is_realized p -> top p | _ -> o in
    relayout (top obj)
  end

let geometry obj = obj.geom

let map obj =
  if is_realized obj then Server.map_window obj.tk.server obj.tk.conn obj.win

let unmap obj =
  if is_realized obj then Server.unmap_window obj.tk.server obj.tk.conn obj.win

let set_handler obj h = obj.handler <- h
let handler obj = obj.handler

(* The recursive [realize] creates children at their natural sizes; a final
   [relayout] imposes the laid-out sizes (specs may override widths, and
   centred/right columns depend on the finished panel width). *)
let realize ?override_redirect obj ~parent_window ~at =
  realize ?override_redirect obj ~parent_window ~at;
  relayout obj
