type t = { name : string; width : int; height : int; rows : string list }

let make ~name ~rows =
  match rows with
  | [] -> invalid_arg "Bitmap.make: no rows"
  | first :: rest ->
      let width = String.length first in
      if width = 0 then invalid_arg "Bitmap.make: empty row"
      else if List.exists (fun r -> String.length r <> width) rest then
        invalid_arg "Bitmap.make: ragged rows"
      else { name; width; height = List.length rows; rows }

let xlogo32 =
  make ~name:"xlogo32"
    ~rows:
      [
        "XX      XX";
        " XX    XX ";
        "  XX  XX  ";
        "   XXXX   ";
        "    XX    ";
        "   XXXX   ";
        "  XX  XX  ";
        " XX    XX ";
        "XX      XX";
      ]

let mail =
  make ~name:"mail"
    ~rows:
      [
        "==========";
        "|\\      /|";
        "| \\    / |";
        "|  \\  /  |";
        "|   \\/   |";
        "==========";
      ]

let terminal =
  make ~name:"terminal"
    ~rows:
      [
        "+--------+";
        "| >_     |";
        "|        |";
        "+--------+";
        "   ====   ";
      ]

let clock_face =
  make ~name:"clock"
    ~rows:
      [
        "  ****  ";
        " *  | * ";
        "*   |  *";
        "*   +--*";
        "*      *";
        " *    * ";
        "  ****  ";
      ]

let trash =
  make ~name:"trash"
    ~rows:
      [
        "  ____  ";
        " |____| ";
        " |    | ";
        " | || | ";
        " | || | ";
        " |____| ";
      ]

let gray =
  make ~name:"gray" ~rows:[ "# # # # "; " # # # #"; "# # # # "; " # # # #" ]

let stock = [ xlogo32; mail; terminal; clock_face; trash; gray ]
let find name = List.find_opt (fun b -> String.equal b.name name) stock
let names () = List.map (fun b -> b.name) stock
