lib/xlib/wire_conn.mli: Server Wire Xid
