lib/xlib/geom.mli: Format
