lib/xlib/wire.mli: Event Format Geom Server Xid
