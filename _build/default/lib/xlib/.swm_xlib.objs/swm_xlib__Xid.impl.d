lib/xlib/xid.ml: Format Hashtbl Int Map
