lib/xlib/bitmap.mli:
