lib/xlib/atom.ml: Array Format Hashtbl Int
