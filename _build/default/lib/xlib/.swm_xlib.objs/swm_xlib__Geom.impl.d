lib/xlib/geom.ml: Buffer Format Option Printf String
