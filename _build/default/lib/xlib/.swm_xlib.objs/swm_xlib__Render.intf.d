lib/xlib/render.mli: Server Xid
