lib/xlib/region.mli: Format Geom
