lib/xlib/server.ml: Array Atom Event Format Geom Hashtbl Keysym List Option Printf Prop Queue Region Xid
