lib/xlib/prop.mli: Format Geom Xid
