lib/xlib/region.ml: Format Geom List
