lib/xlib/server.mli: Atom Event Geom Keysym Prop Region Xid
