lib/xlib/render.ml: Array Buffer Geom List Region Server String
