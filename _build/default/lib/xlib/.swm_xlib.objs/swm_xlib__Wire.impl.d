lib/xlib/wire.ml: Buffer Char Event Format Geom Keysym List Printf Prop Region Server String Xid
