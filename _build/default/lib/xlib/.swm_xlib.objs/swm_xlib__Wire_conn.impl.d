lib/xlib/wire_conn.ml: Buffer Event Format List Prop Region Result Server String Wire Xid
