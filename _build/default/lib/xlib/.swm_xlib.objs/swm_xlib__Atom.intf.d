lib/xlib/atom.mli: Format
