lib/xlib/xid.mli: Format Hashtbl Map
