lib/xlib/prop.ml: Format Geom Xid
