lib/xlib/event.mli: Format Geom Keysym Xid
