lib/xlib/keysym.mli: Format
