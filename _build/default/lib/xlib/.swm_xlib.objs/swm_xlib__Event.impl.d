lib/xlib/event.ml: Format Geom Keysym Xid
