lib/xlib/bitmap.ml: List String
