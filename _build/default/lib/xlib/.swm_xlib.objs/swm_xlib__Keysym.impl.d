lib/xlib/keysym.ml: Format List String
