type t = int

let none = 0
let is_none id = id = 0
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let to_int id = id

let of_int i =
  if i < 0 then invalid_arg "Xid.of_int: negative identifier" else i

let pp ppf id = Format.fprintf ppf "0x%x" id

module Alloc = struct
  type t = int ref

  let create () = ref 0

  let next counter =
    incr counter;
    !counter
end

module Key = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Map = Map.Make (Key)
module Tbl = Hashtbl.Make (Key)
