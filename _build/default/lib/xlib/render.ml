type canvas = { grid : char array array; cw : int; ch : int }

let make_canvas cw ch = { grid = Array.make_matrix ch cw ' '; cw; ch }

let put canvas x y c =
  if x >= 0 && x < canvas.cw && y >= 0 && y < canvas.ch then canvas.grid.(y).(x) <- c

(* Paint one window given the root-coordinate origin of its interior; then
   recurse over children bottom-to-top. All distances are in pixels and are
   divided by [scale] at the last moment. *)
let rec paint server canvas scale id (origin : Geom.point) =
  if Server.is_mapped server id then begin
    let geom = Server.geometry server id in
    let border = Server.border_width server id in
    let shape = Server.shape_get server id in
    let inside_shape px py =
      match shape with
      | None -> true
      | Some region -> Region.contains region (Geom.point px py)
    in
    let cellify v = v / scale in
    (* Border cells: the ring around the interior. *)
    if border > 0 && shape = None then begin
      let x0 = cellify (origin.px - border)
      and y0 = cellify (origin.py - border)
      and x1 = cellify (origin.px + geom.w + border - 1)
      and y1 = cellify (origin.py + geom.h + border - 1) in
      for x = x0 to x1 do
        put canvas x y0 '#';
        put canvas x y1 '#'
      done;
      for y = y0 to y1 do
        put canvas x0 y '#';
        put canvas x1 y '#'
      done
    end;
    (* Background fill (cell granularity over the interior). *)
    (match Server.background_of server id with
    | Some bg ->
        let cx0 = cellify origin.px and cy0 = cellify origin.py in
        let cx1 = cellify (origin.px + geom.w - 1) and cy1 = cellify (origin.py + geom.h - 1) in
        for cy = cy0 to cy1 do
          for cx = cx0 to cx1 do
            (* Sample the pixel at the cell centre for shape clipping. *)
            let px = (cx * scale) + (scale / 2) - origin.px
            and py = (cy * scale) + (scale / 2) - origin.py in
            if inside_shape px py then put canvas cx cy bg
          done
        done
    | None -> ());
    (* Character art fills the interior from the top. *)
    (match Server.art_of server id with
    | Some rows ->
        let cx0 = cellify origin.px and cy0 = cellify origin.py in
        let max_cols = max 0 (cellify (geom.w - 1) + 1) in
        let max_rows = max 0 (cellify (geom.h - 1) + 1) in
        List.iteri
          (fun ry row ->
            if ry < max_rows then
              String.iteri
                (fun rx c ->
                  if rx < max_cols && c <> ' ' then put canvas (cx0 + rx) (cy0 + ry) c)
                row)
          rows
    | None -> ());
    (* Label text along the top row of the interior. *)
    (match Server.label_of server id with
    | Some text ->
        let cy = cellify origin.py in
        let cx0 = cellify origin.px in
        let max_cells = max 0 (cellify (geom.w - 1) + 1) in
        String.iteri
          (fun i c -> if i < max_cells then put canvas (cx0 + i) cy c)
          text
    | None -> ());
    List.iter
      (fun child ->
        let cg = Server.geometry server child in
        let cb = Server.border_width server child in
        paint server canvas scale child
          (Geom.point (origin.px + cg.x + cb) (origin.py + cg.y + cb)))
      (Server.children_of server id)
  end

let render server ~screen ?(scale = 8) () =
  let w, h = Server.screen_size server ~screen in
  let canvas = make_canvas ((w + scale - 1) / scale) ((h + scale - 1) / scale) in
  paint server canvas scale (Server.root server ~screen) (Geom.point 0 0);
  canvas

let render_window server id ?(scale = 8) () =
  let geom = Server.geometry server id in
  let border = Server.border_width server id in
  let size = fun v -> (v + (2 * border) + scale - 1) / scale in
  let canvas = make_canvas (size geom.w) (size geom.h) in
  paint server canvas scale id (Geom.point border border);
  canvas

let to_string canvas =
  let buf = Buffer.create (canvas.cw * canvas.ch) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    canvas.grid;
  Buffer.contents buf

let width canvas = canvas.cw
let height canvas = canvas.ch

let cell canvas ~x ~y =
  if x < 0 || x >= canvas.cw || y < 0 || y >= canvas.ch then
    invalid_arg "Render.cell: out of bounds"
  else canvas.grid.(y).(x)

let diff a b =
  let count = ref 0 in
  let w = max a.cw b.cw and h = max a.ch b.ch in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let ca = if x < a.cw && y < a.ch then a.grid.(y).(x) else '\000' in
      let cb = if x < b.cw && y < b.ch then b.grid.(y).(x) else '\000' in
      if ca <> cb then incr count
    done
  done;
  !count
