(** Pixel regions as unions of disjoint rectangles.

    Used by the SHAPE extension support: a window's bounding shape is a
    region; shaped rendering and hit-testing clip against it.  The
    representation keeps a normalised list of pairwise-disjoint rectangles,
    so operations are exact. *)

type t

val empty : t
val of_rect : Geom.rect -> t
val of_rects : Geom.rect list -> t

val is_empty : t -> bool

val rects : t -> Geom.rect list
(** The disjoint rectangles making up the region (unspecified order). *)

val area : t -> int

val equal : t -> t -> bool
(** Extensional equality: both regions cover the same set of pixels. *)

val contains : t -> Geom.point -> bool

val union : t -> t -> t
val inter : t -> t -> t
val subtract : t -> t -> t

val translate : t -> dx:int -> dy:int -> t

val extents : t -> Geom.rect option
(** Bounding box, or [None] for the empty region. *)

val pp : Format.formatter -> t -> unit

(** {1 Stock shapes} *)

val disc : cx:int -> cy:int -> r:int -> t
(** A filled disc rasterised into horizontal spans — the shape of an
    [oclock]-style round client. *)
