(** Key symbols and modifier state.

    Keysyms are represented by their Xt names (["Up"], ["a"], ["F1"],
    ["Return"]...), which is exactly the form swm's bindings syntax uses. *)

type t = string

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type modifiers = { shift : bool; control : bool; meta : bool }

val no_mods : modifiers
val mods : ?shift:bool -> ?control:bool -> ?meta:bool -> unit -> modifiers
val mod_equal : modifiers -> modifiers -> bool
val pp_modifiers : Format.formatter -> modifiers -> unit

val parse_modifier : string -> (modifiers -> modifiers) option
(** Recognise an Xt modifier name (["Shift"], ["Ctrl"], ["Meta"]...) and
    return the function that sets it. *)
