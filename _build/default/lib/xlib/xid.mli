(** X resource identifiers.

    Every server-side resource (window, atom is separate) is named by an
    [Xid.t].  Identifiers are allocated by the server, never reused within a
    server instance, and are totally ordered so they can key maps. *)

type t

val none : t
(** The reserved identifier [None] (0 in the X protocol); never allocated. *)

val is_none : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** Expose the raw value, e.g. for printing in WM_COMMAND-style strings. *)

val of_int : int -> t
(** Reconstruct an identifier parsed back from text (e.g. [f.raise(#0x1234)]).
    Raises [Invalid_argument] on negative values. *)

val pp : Format.formatter -> t -> unit

module Alloc : sig
  type xid := t
  type t

  val create : unit -> t
  val next : t -> xid
end

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
