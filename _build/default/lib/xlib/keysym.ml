type t = string

let equal = String.equal
let pp = Format.pp_print_string

type modifiers = { shift : bool; control : bool; meta : bool }

let no_mods = { shift = false; control = false; meta = false }

let mods ?(shift = false) ?(control = false) ?(meta = false) () =
  { shift; control; meta }

let mod_equal a b = a.shift = b.shift && a.control = b.control && a.meta = b.meta

let pp_modifiers ppf m =
  let parts =
    List.filter_map
      (fun (set, label) -> if set then Some label else None)
      [ (m.shift, "Shift"); (m.control, "Ctrl"); (m.meta, "Meta") ]
  in
  Format.fprintf ppf "%s" (String.concat " " parts)

let parse_modifier = function
  | "Shift" -> Some (fun m -> { m with shift = true })
  | "Ctrl" | "Control" -> Some (fun m -> { m with control = true })
  | "Meta" | "Mod1" | "Alt" -> Some (fun m -> { m with meta = true })
  | _ -> None
