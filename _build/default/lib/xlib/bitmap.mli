(** Named 1-bit bitmaps.

    The stand-in for the X bitmap files of the era ([xlogo32], mail flags,
    trash cans...): each bitmap is a small grid of set/clear cells, drawn
    by {!Render} as character art.  swm's [iconimage] button and any
    object's [image] attribute resolve names through {!find}. *)

type t = private {
  name : string;
  width : int;  (** in cells *)
  height : int;
  rows : string list;  (** [height] strings of [width] chars; space = clear *)
}

val make : name:string -> rows:string list -> t
(** Validates shape: at least one row, all rows the same width.
    Raises [Invalid_argument] otherwise. *)

val find : string -> t option
(** Look up a stock bitmap by name. *)

val names : unit -> string list

val xlogo32 : t
(** The default icon image of the paper's Xicon template. *)

val mail : t
val terminal : t
val clock_face : t
val trash : t
val gray : t
(** A stipple pattern. *)
