(** Character-cell rendering of a screen's window tree.

    The simulator's stand-in for the frame buffer: each window paints its
    border (['#'] cells), its background fill character and its label text,
    clipped by its SHAPE region; children paint over parents in stacking
    order.  Used to regenerate the paper's figures and to let tests assert
    on what the user would actually see. *)

type canvas

val render : Server.t -> screen:int -> ?scale:int -> unit -> canvas
(** Render the whole screen.  [scale] (default 8) maps [scale] x [scale]
    pixels to one character cell, so a 1152x900 screen fits a terminal. *)

val render_window : Server.t -> Xid.t -> ?scale:int -> unit -> canvas
(** Render just one window (and its subtree), in its own coordinates. *)

val to_string : canvas -> string
val width : canvas -> int
val height : canvas -> int
val cell : canvas -> x:int -> y:int -> char

val diff : canvas -> canvas -> int
(** Number of differing cells (canvases of different sizes count the
    non-overlapping area as differing). *)
