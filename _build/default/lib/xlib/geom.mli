(** Points, rectangles and X geometry strings.

    Geometry strings follow the X convention ["WxH±X±Y"], where a ['-']
    offset is measured from the right/bottom edge of the enclosing area.
    swm panel positions additionally allow the column component to be ['C']
    (centre the object within its row), e.g. ["+C+0"]. *)

type point = { px : int; py : int }

type rect = { x : int; y : int; w : int; h : int }
(** A rectangle; [x, y] is the upper-left corner in the parent's coordinate
    system, [w, h] the interior size (borders are accounted separately). *)

val rect : int -> int -> int -> int -> rect
val point : int -> int -> point

val pp_rect : Format.formatter -> rect -> unit
val pp_point : Format.formatter -> point -> unit

val rect_equal : rect -> rect -> bool

val contains : rect -> point -> bool
(** [contains r p] is true when [p] lies inside [r] (inclusive of the
    upper-left corner, exclusive of the lower-right edge). *)

val intersect : rect -> rect -> rect option
val union_bounds : rect -> rect -> rect

val translate : rect -> dx:int -> dy:int -> rect
val center : rect -> point

val clamp_into : rect -> within:rect -> rect
(** Move (never resize) [rect] so that as much of it as possible lies inside
    [within]; used for viewport clamping when panning the Virtual Desktop. *)

(** {1 Geometry strings} *)

type offset =
  | From_start of int  (** ["+N"]: N from the left/top edge *)
  | From_end of int    (** ["-N"]: N from the right/bottom edge *)
  | Centered           (** ["+C"]: centred (swm panel extension) *)

type spec = {
  width : int option;
  height : int option;
  xoff : offset option;
  yoff : offset option;
}

val parse : string -> (spec, string) result
(** Parse a geometry string such as ["120x120+1010+359"], ["+C+0"], ["-0+1"]
    or ["80x24"].  Returns [Error] with a human-readable message on syntax
    errors. *)

val parse_exn : string -> spec
(** Like {!parse}; raises [Invalid_argument] on malformed input. *)

val to_string : spec -> string

val resolve : spec -> default:rect -> within:rect -> rect
(** Instantiate a geometry spec against the enclosing rectangle [within]:
    missing width/height come from [default]; [From_end] offsets are measured
    from the far edge (X semantics: [-0] puts the window flush against it);
    [Centered] centres along that axis. *)
