(** Atom interning.

    X atoms are server-scoped small integers naming strings.  Properties in
    this simulator are keyed by name for readability, but the intern table is
    still real: swmcmd and the resource-database benches exercise it, and it
    preserves the protocol property that interning the same name twice yields
    the same id. *)

type t = private int

type table

val create_table : unit -> table

val intern : table -> string -> t
(** Intern a name, allocating a fresh atom on first use. *)

val intern_existing : table -> string -> t option
(** Look up without allocating ([only_if_exists = true] in the protocol). *)

val name : table -> t -> string
(** Raises [Not_found] if the atom was never allocated by this table. *)

val count : table -> int
val equal : t -> t -> bool
val pp : table -> Format.formatter -> t -> unit
