type t = Geom.rect list
(* Invariant: rectangles are pairwise disjoint and have positive area. *)

let empty = []
let of_rect (r : Geom.rect) = if r.w > 0 && r.h > 0 then [ r ] else []
let is_empty region = region = []
let rects region = region
let area region = List.fold_left (fun acc (r : Geom.rect) -> acc + (r.w * r.h)) 0 region
let contains region p = List.exists (fun r -> Geom.contains r p) region

(* Subtract rectangle [b] from rectangle [a], yielding up to four disjoint
   pieces of [a] (the classic band decomposition). *)
let rect_subtract (a : Geom.rect) (b : Geom.rect) : Geom.rect list =
  match Geom.intersect a b with
  | None -> [ a ]
  | Some i ->
      let pieces = ref [] in
      let add x y w h = if w > 0 && h > 0 then pieces := Geom.rect x y w h :: !pieces in
      add a.x a.y a.w (i.y - a.y);
      add a.x (i.y + i.h) a.w (a.y + a.h - i.y - i.h);
      add a.x i.y (i.x - a.x) i.h;
      add (i.x + i.w) i.y (a.x + a.w - i.x - i.w) i.h;
      !pieces

let subtract region by =
  List.fold_left
    (fun acc cut -> List.concat_map (fun r -> rect_subtract r cut) acc)
    region by

let union a b =
  (* Keep [a] whole; add only the parts of [b] not already covered. *)
  subtract b a @ a

let inter a b =
  List.concat_map
    (fun ra ->
      List.filter_map (fun rb -> Geom.intersect ra rb) b |> fun pieces ->
      (* Pieces from intersecting a single [ra] with disjoint [b]-rects are
         themselves disjoint. *)
      ignore ra;
      pieces)
    a

let of_rects list = List.fold_left (fun acc r -> union acc (of_rect r)) empty list
let translate region ~dx ~dy = List.map (fun r -> Geom.translate r ~dx ~dy) region

let extents = function
  | [] -> None
  | first :: rest -> Some (List.fold_left Geom.union_bounds first rest)

let equal a b = is_empty (subtract a b) && is_empty (subtract b a)

let pp ppf region =
  Format.fprintf ppf "@[<hov>region{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Geom.pp_rect)
    region

let disc ~cx ~cy ~r =
  if r <= 0 then empty
  else begin
    let spans = ref [] in
    for row = -r to r - 1 do
      (* Horizontal span of the disc at pixel row [cy + row]; use the row
         centre for a symmetric rasterisation. *)
      let fy = float_of_int row +. 0.5 in
      let fr = float_of_int r in
      let half = sqrt (max 0. ((fr *. fr) -. (fy *. fy))) in
      let dx = int_of_float half in
      if dx > 0 then spans := Geom.rect (cx - dx) (cy + row) (2 * dx) 1 :: !spans
    done;
    !spans
  end
