type t = int

type table = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create_table () = { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 }

let intern table name =
  match Hashtbl.find_opt table.by_name name with
  | Some id -> id
  | None ->
      let id = table.next in
      table.next <- id + 1;
      if id >= Array.length table.by_id then begin
        let grown = Array.make (2 * Array.length table.by_id) "" in
        Array.blit table.by_id 0 grown 0 (Array.length table.by_id);
        table.by_id <- grown
      end;
      table.by_id.(id) <- name;
      Hashtbl.replace table.by_name name id;
      id

let intern_existing table name = Hashtbl.find_opt table.by_name name

let name table id =
  if id < 0 || id >= table.next then raise Not_found else table.by_id.(id)

let count table = table.next
let equal = Int.equal
let pp table ppf id = Format.fprintf ppf "%s" (name table id)
