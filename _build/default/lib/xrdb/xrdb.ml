type binding = Tight | Loose
type component = Name of string | Single_wild
type key = (binding * component) list

type t = { mutable items : (key * string) list }
(* Later entries shadow earlier ones with the same key; queries scan all and
   resolve by Xrm precedence. *)

let create () = { items = [] }
let copy db = { items = db.items }
let size db = List.length db.items

(* -------- key parsing -------- *)

let component_ok s =
  s <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true | _ -> false)
       s

let parse_key spec =
  let n = String.length spec in
  let rec loop i binding acc =
    if i >= n then
      if binding = None then Ok (List.rev acc)
      else Error (Printf.sprintf "trailing binding in %S" spec)
    else
      match spec.[i] with
      | '.' | '*' ->
          if binding <> None || acc = [] && spec.[i] = '.' then
            (* Leading '.' or doubled '.' is an error; '*' may lead or repeat
               (Xrm collapses '*.', '.*' and '**' to a loose binding). *)
            if spec.[i] = '*' then loop (i + 1) (Some Loose) acc
            else Error (Printf.sprintf "misplaced '.' in %S" spec)
          else
            loop (i + 1) (Some (if spec.[i] = '*' then Loose else Tight)) acc
      | '?' ->
          let b = Option.value binding ~default:Tight in
          loop (i + 1) None ((b, Single_wild) :: acc)
      | _ ->
          let j = ref i in
          while
            !j < n
            && match spec.[!j] with '.' | '*' | '?' -> false | _ -> true
          do
            incr j
          done;
          let name = String.sub spec i (!j - i) in
          if not (component_ok name) then
            Error (Printf.sprintf "bad component %S in %S" name spec)
          else begin
            let b = Option.value binding ~default:Tight in
            loop !j None ((b, Name name) :: acc)
          end
  in
  match loop 0 None [] with
  | Ok [] -> Error "empty resource specifier"
  | result -> result

let key_to_string key =
  let buf = Buffer.create 32 in
  List.iteri
    (fun i (binding, comp) ->
      (match (i, binding) with
      | 0, Tight -> ()
      | 0, Loose -> Buffer.add_char buf '*'
      | _, Tight -> Buffer.add_char buf '.'
      | _, Loose -> Buffer.add_char buf '*');
      match comp with
      | Name s -> Buffer.add_string buf s
      | Single_wild -> Buffer.add_char buf '?')
    key;
  Buffer.contents buf

let put_key db key value =
  db.items <- (key, value) :: List.filter (fun (k, _) -> k <> key) db.items

let put db spec value =
  match parse_key spec with
  | Ok key -> put_key db key value
  | Error msg -> invalid_arg ("Xrdb.put: " ^ msg)

let remove db key = db.items <- List.filter (fun (k, _) -> k <> key) db.items
let merge ~into db = List.iter (fun (k, v) -> put_key into k v) (List.rev db.items)
let entries db = db.items

(* -------- file syntax -------- *)

(* Splice physical lines: a backslash immediately before the newline joins
   the next line (its leading blanks dropped, as swm's template files are
   written with indented continuations). *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec loop acc current = function
    | [] -> List.rev (if current = "" then acc else current :: acc)
    | line :: rest ->
        let joined = if current = "" then line else current ^ " " ^ String.trim line in
        if String.length joined > 0 && joined.[String.length joined - 1] = '\\' then
          loop acc (String.sub joined 0 (String.length joined - 1)) rest
        else loop (joined :: acc) "" rest
  in
  loop [] "" raw

let unescape value =
  let buf = Buffer.create (String.length value) in
  let n = String.length value in
  let rec loop i =
    if i < n then
      if value.[i] = '\\' && i + 1 < n then begin
        (match value.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | '\\' -> Buffer.add_char buf '\\'
        | c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c);
        loop (i + 2)
      end
      else begin
        Buffer.add_char buf value.[i];
        loop (i + 1)
      end
  in
  loop 0;
  Buffer.contents buf

let load_string db text =
  let count = ref 0 in
  let err = ref None in
  List.iter
    (fun line ->
      if !err = None then begin
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '!' || trimmed.[0] = '#' then ()
        else
          match String.index_opt trimmed ':' with
          | None -> err := Some (Printf.sprintf "missing ':' in %S" trimmed)
          | Some colon ->
              let spec = String.trim (String.sub trimmed 0 colon) in
              let value =
                String.sub trimmed (colon + 1) (String.length trimmed - colon - 1)
              in
              let value =
                (* Only leading whitespace is insignificant. *)
                let k = ref 0 in
                while
                  !k < String.length value && (value.[!k] = ' ' || value.[!k] = '\t')
                do
                  incr k
                done;
                String.sub value !k (String.length value - !k)
              in
              (match parse_key spec with
              | Ok key ->
                  put_key db key (unescape value);
                  incr count
              | Error msg -> err := Some msg)
      end)
    (logical_lines text);
  match !err with Some msg -> Error msg | None -> Ok !count

let load_file db path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> load_string db text
  | exception Sys_error msg -> Error msg

(* -------- cpp-style preprocessing -------- *)

exception Cpp_error of string

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

(* Whole-word macro substitution, one pass (like cpp for object-like
   macros without recursion). *)
let substitute defines line =
  if Hashtbl.length defines = 0 then line
  else begin
    let buf = Buffer.create (String.length line) in
    let n = String.length line in
    let i = ref 0 in
    while !i < n do
      if is_word_char line.[!i] then begin
        let start = !i in
        while !i < n && is_word_char line.[!i] do
          incr i
        done;
        let word = String.sub line start (!i - start) in
        match Hashtbl.find_opt defines word with
        | Some value -> Buffer.add_string buf value
        | None -> Buffer.add_string buf word
      end
      else begin
        Buffer.add_char buf line.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let directive line =
  let trimmed = String.trim line in
  if String.length trimmed = 0 || trimmed.[0] <> '#' then None
  else begin
    let rest = String.sub trimmed 1 (String.length trimmed - 1) in
    match
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun w -> w <> "")
    with
    | "include" :: args -> Some (`Include (String.concat " " args))
    | "define" :: name :: value -> Some (`Define (name, String.concat " " value))
    | [ "define" ] -> Some (`Bad "#define needs a name")
    | "undef" :: [ name ] -> Some (`Undef name)
    | "ifdef" :: [ name ] -> Some (`Ifdef name)
    | "ifndef" :: [ name ] -> Some (`Ifndef name)
    | [ "else" ] -> Some `Else
    | [ "endif" ] -> Some `Endif
    | _ -> None (* '#' alone is a comment line in resource files *)
  end

let unquote s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && ((s.[0] = '"' && s.[n - 1] = '"') || (s.[0] = '<' && s.[n - 1] = '>'))
  then String.sub s 1 (n - 2)
  else s

let preprocess ?(defines = []) ?(loader = fun _ -> None) text =
  let macros = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace macros k v) defines;
  let out = Buffer.create (String.length text) in
  (* Conditional stack: each frame is [true] when the current branch is
     live (given that the enclosing frames are live). *)
  let stack = ref [] in
  let live () = List.for_all (fun b -> b) !stack in
  let rec process_text depth text =
    if depth > 16 then raise (Cpp_error "#include nesting too deep");
    List.iter
      (fun line ->
        match directive line with
        | Some (`Include arg) ->
            if live () then begin
              let path = unquote arg in
              match loader path with
              | Some included -> process_text (depth + 1) included
              | None -> raise (Cpp_error (Printf.sprintf "cannot include %S" path))
            end
        | Some (`Define (name, value)) ->
            if live () then Hashtbl.replace macros name value
        | Some (`Undef name) -> if live () then Hashtbl.remove macros name
        | Some (`Ifdef name) -> stack := Hashtbl.mem macros name :: !stack
        | Some (`Ifndef name) -> stack := (not (Hashtbl.mem macros name)) :: !stack
        | Some `Else -> (
            match !stack with
            | top :: rest -> stack := (not top) :: rest
            | [] -> raise (Cpp_error "#else without #ifdef"))
        | Some `Endif -> (
            match !stack with
            | _ :: rest -> stack := rest
            | [] -> raise (Cpp_error "#endif without #ifdef"))
        | Some (`Bad msg) -> if live () then raise (Cpp_error msg)
        | None ->
            if live () then begin
              Buffer.add_string out (substitute macros line);
              Buffer.add_char out '\n'
            end)
      (String.split_on_char '\n' text)
  in
  match process_text 0 text with
  | () ->
      if !stack <> [] then Error "unterminated #ifdef"
      else Ok (Buffer.contents out)
  | exception Cpp_error msg -> Error msg

let load_string_cpp ?defines ?loader db text =
  match preprocess ?defines ?loader text with
  | Ok processed -> load_string db processed
  | Error _ as e -> e

(* -------- matching -------- *)

(* Per-level score: 0 = skipped by a loose binding; otherwise
   base*2 + tight, with base: Single_wild = 1, class match = 2, name
   match = 3.  Lexicographic comparison over levels implements the Xrm
   precedence rules (earlier levels dominate). *)

let rec compare_scores a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: a', y :: b' -> if x <> y then compare x y else compare_scores a' b'

(* Try to match [key] against the query suffix starting at [qi]; returns the
   best score list or None.  At each position, consuming a component beats
   skipping (same prefix, bigger level score), so we only fall back to the
   skip branch when the consume branch fails. *)
let match_key key names classes =
  let k = Array.length names in
  let rec go key qi =
    match (key, qi >= k) with
    | [], true -> Some []
    | [], false -> None
    | _ :: _, true -> None
    | (binding, comp) :: rest, false ->
        let consume =
          let base =
            match comp with
            | Single_wild -> Some 1
            | Name s ->
                if String.equal s names.(qi) then Some 3
                else if String.equal s classes.(qi) then Some 2
                else None
          in
          match base with
          | None -> None
          | Some b ->
              let level = (b * 2) + if binding = Tight then 1 else 0 in
              Option.map (fun tail -> level :: tail) (go rest (qi + 1))
        in
        (match consume with
        | Some _ -> consume
        | None ->
            if binding = Loose then
              Option.map (fun tail -> 0 :: tail) (go key (qi + 1))
            else None)
  in
  go key 0

let query db ~names ~classes =
  if List.length names <> List.length classes then
    invalid_arg "Xrdb.query: names and classes must have equal length";
  let names = Array.of_list names and classes = Array.of_list classes in
  let best = ref None in
  List.iter
    (fun (key, value) ->
      match match_key key names classes with
      | None -> ()
      | Some score -> (
          match !best with
          | Some (bscore, _) when compare_scores score bscore <= 0 -> ()
          | Some _ | None -> best := Some (score, value)))
    (* Scan oldest-first so that, on equal precedence, the most recently
       added entry wins. *)
    (List.rev db.items);
  Option.map snd !best

let query_bool db ~names ~classes =
  match query db ~names ~classes with
  | None -> None
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "true" | "yes" | "on" | "1" -> Some true
      | "false" | "no" | "off" | "0" -> Some false
      | _ -> None)

let query_int db ~names ~classes =
  match query db ~names ~classes with
  | None -> None
  | Some v -> int_of_string_opt (String.trim v)

let to_string db =
  let buf = Buffer.create 256 in
  List.iter
    (fun (key, value) ->
      Buffer.add_string buf (key_to_string key);
      Buffer.add_string buf ": ";
      String.iter
        (function
          | '\n' -> Buffer.add_string buf "\\n" | c -> Buffer.add_char buf c)
        value;
      Buffer.add_char buf '\n')
    (List.rev db.items);
  Buffer.contents buf
