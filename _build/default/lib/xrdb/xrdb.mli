(** The X resource manager (Xrm) database.

    swm is configured *entirely* through this database (paper §3): resource
    specifications such as

    {v
swm.monochrome.screen0.XClock.xclock.decoration: noTitlePanel
Swm*panel.openLook: \
    button pulldown +0+0 \
    button name     +C+0
    v}

    This module implements the full Xrm model: components joined by tight
    ([.]) or loose ([*]) bindings, [?] single-component wildcards, query by
    parallel name/class lists, and the X11 precedence rules (earlier
    components dominate; name match > class match > [?] > skipped; tight >
    loose).  Values support [\ ] line continuations and [\n] escapes. *)

type t

type binding = Tight | Loose
type component = Name of string | Single_wild

type key = (binding * component) list
(** A parsed resource specifier; the [binding] is the one *preceding* the
    component (the first is conventionally [Tight]). *)

val create : unit -> t
val copy : t -> t
val size : t -> int

(** {1 Building the database} *)

val parse_key : string -> (key, string) result
val key_to_string : key -> string

val put : t -> string -> string -> unit
(** [put db "swm*panel.foo" "button a +0+0"] — parses the specifier and
    stores/overrides the value.  Raises [Invalid_argument] on a malformed
    specifier. *)

val put_key : t -> key -> string -> unit

val load_string : t -> string -> (int, string) result
(** Merge resource-file text: one [spec: value] per logical line, [!] and
    [#] comment lines, backslash-newline continuations, [\n] escapes.
    Returns the number of entries loaded, or the first syntax error. *)

val load_file : t -> string -> (int, string) result

(** {2 Preprocessing}

    Real resource files are run through cpp; xrdb defines symbols like
    [COLOR] per screen, and template files select policy with [#ifdef].
    {!preprocess} implements the subset those files use: [#include "f"]
    (through a caller-supplied loader), [#define NAME value] with
    whole-word substitution, [#undef], [#ifdef] / [#ifndef] / [#else] /
    [#endif] (nested). *)

val preprocess :
  ?defines:(string * string) list ->
  ?loader:(string -> string option) ->
  string ->
  (string, string) result

val load_string_cpp :
  ?defines:(string * string) list ->
  ?loader:(string -> string option) ->
  t ->
  string ->
  (int, string) result
(** {!preprocess} then {!load_string}. *)

val merge : into:t -> t -> unit
(** [merge ~into db] adds every entry of [db], overriding equal keys. *)

val remove : t -> key -> unit

(** {1 Queries} *)

val query : t -> names:string list -> classes:string list -> string option
(** [query db ~names ~classes] with parallel fully-qualified name and class
    lists (equal lengths) returns the value of the best-matching entry under
    Xrm precedence, or [None]. *)

val query_bool : t -> names:string list -> classes:string list -> bool option
(** Recognises true/false, yes/no, on/off, 1/0 (case-insensitive). *)

val query_int : t -> names:string list -> classes:string list -> int option

val entries : t -> (key * string) list
(** All entries, in unspecified order. *)

val to_string : t -> string
(** Serialise back to resource-file syntax (one line per entry). *)
