lib/xrdb/xrdb.ml: Array Buffer Hashtbl In_channel List Option Printf String
