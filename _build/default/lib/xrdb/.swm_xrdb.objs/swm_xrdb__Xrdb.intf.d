lib/xrdb/xrdb.mli:
