let titled = Gwm_like.default_policy

let cascade =
  {|
; cascade placement: position is a function of how many windows exist.
(define placed 0)
(define (on-manage win)
  (decorate win 20 2)
  (move-window win (+ 30 (* 35 (mod placed 10)))
                   (+ 30 (* 35 (mod placed 10))))
  (set! placed (+ placed 1)))

(define (on-button win button context)
  (if (= button 1) (raise-window win) #f))
|}

let click_to_iconify_all =
  {|
(define managed '())
(define (on-manage win)
  (decorate win 20 2)
  (set! managed (cons win managed)))

(define (iconify-each lst)
  (if (null? lst) #t
    (begin (iconify-window (car lst))
           (iconify-each (cdr lst)))))

(define (on-button win button context)
  (if (= button 3)
      (iconify-each managed)
    (if (= button 1) (raise-window win) #f)))
|}

let minimal =
  {|
; no decoration: a 0-height title and 0 border is as bare as the host
; primitives go, like gwm's simplest describe-window.
(define (on-manage win) (decorate win 1 0))
(define (on-button win button context) #f)
|}

let all =
  [
    ("titled", titled);
    ("cascade", cascade);
    ("click-to-iconify-all", click_to_iconify_all);
    ("minimal", minimal);
  ]
