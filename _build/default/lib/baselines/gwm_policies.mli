(** Sample gwm policies.

    The paper's complaint about gwm is that any policy change "requires
    command of the Lisp language".  These policies are what that looks
    like in practice — each is a program, where the equivalent swm policy
    is a handful of resource lines.  Used by tests and by the
    configurability benches. *)

val titled : string
(** The default: title bar, click-to-raise (same as
    {!Gwm_like.default_policy}). *)

val cascade : string
(** Auto-placement: ignores the client's position and cascades windows
    diagonally, counting managed windows in Lisp. *)

val click_to_iconify_all : string
(** Button 3 anywhere on a title iconifies *every* managed window —
    demonstrates policy loops over WM state in Lisp. *)

val minimal : string
(** No decoration at all: just map (gwm's "describe-window nil"
    style). *)

val all : (string * string) list
