module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event

type managed = {
  cwin : Xid.t;
  mutable frame : Xid.t;
  mutable title : Xid.t;
  mutable iconic : bool;
}

type t = {
  server : Server.t;
  conn : Server.conn;
  root : Xid.t;
  env : Mlisp.env;
  table : managed Xid.Tbl.t;
}

let default_policy =
  {|
; gwm-like policy: titled frames, click-to-raise, button-3 iconify.
(define title-height 20)
(define border-width 2)

(define (on-manage win)
  (decorate win title-height border-width))

(define (on-button win button context)
  (if (string=? context "title")
      (if (= button 1) (raise-window win)
        (if (= button 2) (lower-window win)
          (if (= button 3) (iconify-window win) #f)))
    (if (string=? context "icon")
        (deiconify-window win)
      #f)))
|}

let int_of = function Mlisp.Int n -> n | v -> raise (Mlisp.Error ("expected int, got " ^ Mlisp.to_string v))

let xid_of = function
  | Mlisp.Int n -> Xid.of_int n
  | v -> raise (Mlisp.Error ("expected window id, got " ^ Mlisp.to_string v))

let managed_count wm =
  Xid.Tbl.fold (fun k m acc -> if Xid.equal k m.cwin then acc + 1 else acc) wm.table 0

let frame_of wm cwin =
  match Xid.Tbl.find_opt wm.table cwin with Some m -> Some m.frame | None -> None

let read_name wm win =
  match Server.get_property wm.server win ~name:Prop.wm_name with
  | Some (Prop.String s) -> s
  | Some _ | None -> "untitled"

(* The [decorate] primitive: frame + title, registered against this WM. *)
let decorate wm cwin title_height border_width =
  if (not (Xid.Tbl.mem wm.table cwin)) && Server.window_exists wm.server cwin then begin
    let cgeom = Server.geometry wm.server cwin in
    let frame =
      Server.create_window wm.server wm.conn ~parent:wm.root
        ~geom:(Geom.rect cgeom.x cgeom.y cgeom.w (cgeom.h + title_height))
        ~border:border_width ~background:' ' ()
    in
    let title =
      Server.create_window wm.server wm.conn ~parent:frame
        ~geom:(Geom.rect 0 0 cgeom.w title_height)
        ~background:'~' ~label:(read_name wm cwin) ()
    in
    Server.select_input wm.server wm.conn title
      [ Event.Button_press_mask; Event.Button_release_mask ];
    Server.map_window wm.server wm.conn title;
    Server.reparent_window wm.server wm.conn cwin ~new_parent:frame
      ~pos:(Geom.point 0 title_height);
    Server.add_to_save_set wm.server wm.conn cwin;
    Server.select_input wm.server wm.conn cwin
      [ Event.Structure_notify; Event.Property_change ];
    Server.map_window wm.server wm.conn cwin;
    Server.map_window wm.server wm.conn frame;
    let m = { cwin; frame; title; iconic = false } in
    Xid.Tbl.replace wm.table cwin m;
    Xid.Tbl.replace wm.table frame m;
    Xid.Tbl.replace wm.table title m
  end

let register_primitives wm =
  let env = wm.env in
  let with_managed v f =
    match Xid.Tbl.find_opt wm.table (xid_of v) with
    | Some m -> f m
    | None -> ()
  in
  Mlisp.register env "decorate" (function
    | [ win; th; bw ] ->
        decorate wm (xid_of win) (int_of th) (int_of bw);
        Mlisp.Bool true
    | _ -> raise (Mlisp.Error "decorate: (decorate win title-height border)"));
  Mlisp.register env "raise-window" (function
    | [ v ] ->
        with_managed v (fun m -> Server.raise_window wm.server wm.conn m.frame);
        Mlisp.Bool true
    | _ -> raise (Mlisp.Error "raise-window: one argument"));
  Mlisp.register env "lower-window" (function
    | [ v ] ->
        with_managed v (fun m -> Server.lower_window wm.server wm.conn m.frame);
        Mlisp.Bool true
    | _ -> raise (Mlisp.Error "lower-window: one argument"));
  Mlisp.register env "iconify-window" (function
    | [ v ] ->
        with_managed v (fun m ->
            if not m.iconic then begin
              Server.unmap_window wm.server wm.conn m.frame;
              m.iconic <- true
            end);
        Mlisp.Bool true
    | _ -> raise (Mlisp.Error "iconify-window: one argument"));
  Mlisp.register env "deiconify-window" (function
    | [ v ] ->
        with_managed v (fun m ->
            if m.iconic then begin
              Server.map_window wm.server wm.conn m.frame;
              m.iconic <- false
            end);
        Mlisp.Bool true
    | _ -> raise (Mlisp.Error "deiconify-window: one argument"));
  Mlisp.register env "move-window" (function
    | [ v; x; y ] ->
        with_managed v (fun m ->
            let g = Server.geometry wm.server m.frame in
            Server.move_resize wm.server wm.conn m.frame
              { g with Geom.x = int_of x; y = int_of y });
        Mlisp.Bool true
    | _ -> raise (Mlisp.Error "move-window: (move-window win x y)"));
  Mlisp.register env "window-name" (function
    | [ v ] -> Mlisp.Str (read_name wm (xid_of v))
    | _ -> raise (Mlisp.Error "window-name: one argument"));
  Mlisp.register env "managed-count" (function
    | [] -> Mlisp.Int (managed_count wm)
    | _ -> raise (Mlisp.Error "managed-count: no arguments"))

let call_hook wm name args =
  match Mlisp.lookup wm.env name with
  | Some fn -> ( try ignore (Mlisp.call wm.env fn args) with Mlisp.Error _ -> ())
  | None -> ()

let context_of wm (m : managed) win =
  if Xid.equal win m.title then "title"
  else if Xid.equal win wm.root then "root"
  else "frame"

let handle_event wm event =
  match event with
  | Event.Map_request { window; _ } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m ->
          if m.iconic then begin
            Server.map_window wm.server wm.conn m.frame;
            m.iconic <- false
          end
      | None -> call_hook wm "on-manage" [ Mlisp.Int (Xid.to_int window) ])
  | Event.Button_press { window; button; _ } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m ->
          call_hook wm "on-button"
            [
              Mlisp.Int (Xid.to_int m.cwin);
              Mlisp.Int button;
              Mlisp.Str (context_of wm m window);
            ]
      | None -> ())
  | Event.Destroy_notify { window } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m when Xid.equal window m.cwin ->
          if Server.window_exists wm.server m.frame then
            Server.destroy_window wm.server m.frame;
          Xid.Tbl.remove wm.table m.cwin;
          Xid.Tbl.remove wm.table m.frame;
          Xid.Tbl.remove wm.table m.title
      | Some _ | None -> ())
  | Event.Property_notify { window; name; _ } when String.equal name Prop.wm_name -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m -> Server.set_label wm.server m.title (Some (read_name wm m.cwin))
      | None -> ())
  | Event.Configure_request { window; changes; _ } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m ->
          let cgeom = Server.geometry wm.server m.cwin in
          let w = Option.value changes.cw ~default:cgeom.w in
          let h = Option.value changes.ch ~default:cgeom.h in
          let th = (Server.geometry wm.server m.title).h in
          Server.move_resize wm.server wm.conn m.cwin (Geom.rect 0 th w h);
          let fgeom = Server.geometry wm.server m.frame in
          Server.move_resize wm.server wm.conn m.frame
            { fgeom with Geom.w; h = h + th }
      | None -> Server.configure_window wm.server wm.conn window changes)
  | _ -> ()

let step wm =
  let count = ref 0 in
  let rec drain () =
    match Server.next_event wm.conn with
    | Some event ->
        incr count;
        handle_event wm event;
        drain ()
    | None -> ()
  in
  drain ();
  !count

let start ?(policy = default_policy) server =
  let conn = Server.connect server ~name:"gwm" in
  let root = Server.root server ~screen:0 in
  Server.select_input server conn root
    [
      Event.Substructure_redirect;
      Event.Substructure_notify;
      Event.Button_press_mask;
      Event.Button_release_mask;
    ];
  let wm = { server; conn; root; env = Mlisp.base_env (); table = Xid.Tbl.create 64 } in
  register_primitives wm;
  match Mlisp.eval_program wm.env policy with
  | Error msg ->
      Server.disconnect server conn;
      Error msg
  | Ok _ ->
      List.iter
        (fun child ->
          if Server.is_mapped server child && not (Server.override_redirect server child)
          then call_hook wm "on-manage" [ Mlisp.Int (Xid.to_int child) ])
        (Server.children_of server root);
      Ok wm

let eval wm src =
  match Mlisp.eval_program wm.env src with
  | Ok v -> Ok (Mlisp.to_string v)
  | Error _ as e -> e

let shutdown wm = Server.disconnect wm.server wm.conn
