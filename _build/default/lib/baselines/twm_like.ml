module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event

type config = {
  border_width : int;
  title_height : int;
  no_title : string list;
  auto_raise : bool;
  icon_x : int;
  use_icon_manager : bool;
  bindings : (int * string * string) list;
}

let default_config =
  {
    border_width = 2;
    title_height = 20;
    no_title = [];
    auto_raise = false;
    icon_x = 8;
    use_icon_manager = false;
    bindings =
      [ (1, "title", "f.raise"); (2, "title", "f.move"); (3, "title", "f.iconify");
        (1, "icon", "f.deiconify") ];
  }

(* -------- .twmrc parsing: one directive per line -------- *)

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_twmrc text =
  let config = ref default_config in
  let err = ref None in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if !err = None then begin
        let line = String.trim line in
        if line = "" || line.[0] = '#' || line.[0] = '!' then ()
        else
          match words line with
          | [ "BorderWidth"; n ] -> (
              match int_of_string_opt n with
              | Some n -> config := { !config with border_width = n }
              | None -> err := Some ("bad BorderWidth: " ^ n))
          | [ "TitleHeight"; n ] -> (
              match int_of_string_opt n with
              | Some n -> config := { !config with title_height = n }
              | None -> err := Some ("bad TitleHeight: " ^ n))
          | [ "AutoRaise"; v ] ->
              config := { !config with auto_raise = String.lowercase_ascii v = "true" }
          | [ "UseIconManager"; v ] ->
              config :=
                { !config with use_icon_manager = String.lowercase_ascii v = "true" }
          | [ "IconX"; n ] -> (
              match int_of_string_opt n with
              | Some n -> config := { !config with icon_x = n }
              | None -> err := Some ("bad IconX: " ^ n))
          | "NoTitle" :: rest ->
              let classes =
                List.filter (fun w -> w <> "{" && w <> "}") rest
                |> List.map (fun w ->
                       String.concat ""
                         (String.split_on_char '"' w))
              in
              config := { !config with no_title = (!config).no_title @ classes }
          | [ button; "="; ":"; context; ":"; fname ]
            when String.length button = 7
                 && String.sub button 0 6 = "Button" -> (
              match int_of_string_opt (String.sub button 6 1) with
              | Some b when b >= 1 && b <= 5 ->
                  config :=
                    { !config with bindings = (!config).bindings @ [ (b, context, fname) ] }
              | Some _ | None -> err := Some ("bad button: " ^ button))
          | _ -> err := Some ("unknown directive: " ^ line)
      end)
    lines;
  match !err with Some msg -> Error msg | None -> Ok !config

let config_to_string c =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "BorderWidth %d\nTitleHeight %d\nAutoRaise %b\nIconX %d\n"
    c.border_width c.title_height c.auto_raise c.icon_x;
  if c.use_icon_manager then Printf.bprintf buf "UseIconManager true\n";
  if c.no_title <> [] then
    Printf.bprintf buf "NoTitle { %s }\n" (String.concat " " c.no_title);
  List.iter
    (fun (b, context, fname) ->
      Printf.bprintf buf "Button%d = : %s : %s\n" b context fname)
    c.bindings;
  Buffer.contents buf

(* -------- the WM -------- *)

type managed = {
  cwin : Xid.t;
  mutable frame : Xid.t;
  mutable title : Xid.t;  (** Xid.none when NoTitle *)
  mutable icon : Xid.t;  (** icon window when iconified *)
  mutable iconic : bool;
  class_ : string;
}

type t = {
  server : Server.t;
  conn : Server.conn;
  root : Xid.t;
  config : config;
  table : managed Xid.Tbl.t;
  mutable move_grab : (managed * Geom.point) option;
  mutable next_icon_y : int;
  mutable icon_manager : Xid.t; (* Xid.none when disabled *)
  icon_rows : managed Xid.Tbl.t; (* row window -> iconified client *)
}

let read_name_for wm win =
  match Server.get_property wm.server win ~name:Prop.wm_name with
  | Some (Prop.String s) -> s
  | Some _ | None -> "untitled"

(* twm's Icon Manager: a fixed-appearance list of iconified clients; each
   row is a small window whose click deiconifies (contrast with swm's icon
   holders, which hold the real icons — paper §4.1.5). *)
let refresh_icon_manager wm =
  if not (Xid.is_none wm.icon_manager) then begin
    List.iter
      (fun row ->
        Xid.Tbl.remove wm.icon_rows row;
        if Server.window_exists wm.server row then Server.destroy_window wm.server row)
      (Xid.Tbl.fold (fun row _ acc -> row :: acc) wm.icon_rows []);
    let iconified =
      Xid.Tbl.fold
        (fun k m acc -> if Xid.equal k m.cwin && m.iconic then m :: acc else acc)
        wm.table []
    in
    let row_h = 16 in
    List.iteri
      (fun i m ->
        let row =
          Server.create_window wm.server wm.conn ~parent:wm.icon_manager
            ~geom:(Geom.rect 1 (1 + (i * row_h)) 118 (row_h - 2))
            ~background:'i'
            ~label:(read_name_for wm m.cwin)
            ()
        in
        Server.select_input wm.server wm.conn row [ Event.Button_press_mask ];
        Server.map_window wm.server wm.conn row;
        Xid.Tbl.replace wm.icon_rows row m)
      iconified;
    let g = Server.geometry wm.server wm.icon_manager in
    Server.move_resize wm.server wm.conn wm.icon_manager
      { g with Geom.h = max row_h (2 + (List.length iconified * row_h)) };
    if iconified = [] then Server.unmap_window wm.server wm.conn wm.icon_manager
    else Server.map_window wm.server wm.conn wm.icon_manager
  end

let managed_count wm =
  Xid.Tbl.fold (fun k m acc -> if Xid.equal k m.cwin then acc + 1 else acc) wm.table 0

let frame_of wm cwin =
  match Xid.Tbl.find_opt wm.table cwin with Some m -> Some m.frame | None -> None

let icon_manager_window wm =
  if Xid.is_none wm.icon_manager then None else Some wm.icon_manager

let read_class wm win =
  match Server.get_property wm.server win ~name:Prop.wm_class with
  | Some (Prop.Wm_class { class_; _ }) -> class_
  | Some _ | None -> "Unknown"

let read_name wm win =
  match Server.get_property wm.server win ~name:Prop.wm_name with
  | Some (Prop.String s) -> s
  | Some _ | None -> "untitled"

let manage wm cwin =
  if (not (Xid.Tbl.mem wm.table cwin)) && not (Server.override_redirect wm.server cwin)
  then begin
    let cfg = wm.config in
    let class_ = read_class wm cwin in
    let titled = not (List.mem class_ cfg.no_title) in
    let cgeom = Server.geometry wm.server cwin in
    let th = if titled then cfg.title_height else 0 in
    let frame =
      Server.create_window wm.server wm.conn ~parent:wm.root
        ~geom:(Geom.rect cgeom.x cgeom.y cgeom.w (cgeom.h + th))
        ~border:cfg.border_width ~background:' ' ()
    in
    let title =
      if titled then begin
        let t =
          Server.create_window wm.server wm.conn ~parent:frame
            ~geom:(Geom.rect 0 0 cgeom.w th) ~background:'=' ~label:(read_name wm cwin)
            ()
        in
        Server.select_input wm.server wm.conn t
          [ Event.Button_press_mask; Event.Button_release_mask ];
        Server.map_window wm.server wm.conn t;
        t
      end
      else Xid.none
    in
    Server.reparent_window wm.server wm.conn cwin ~new_parent:frame
      ~pos:(Geom.point 0 th);
    Server.add_to_save_set wm.server wm.conn cwin;
    Server.select_input wm.server wm.conn cwin
      [ Event.Structure_notify; Event.Property_change ];
    Server.map_window wm.server wm.conn cwin;
    Server.map_window wm.server wm.conn frame;
    Server.change_property wm.server wm.conn cwin ~name:Prop.wm_state_name
      (Prop.Wm_state_value { state = Prop.Normal; icon = Xid.none });
    let m = { cwin; frame; title; icon = Xid.none; iconic = false; class_ } in
    Xid.Tbl.replace wm.table cwin m;
    Xid.Tbl.replace wm.table frame m;
    if titled then Xid.Tbl.replace wm.table title m
  end

let unmanage wm (m : managed) ~destroyed =
  if not destroyed then begin
    let abs = Server.root_geometry wm.server m.cwin in
    if Server.window_exists wm.server m.cwin then begin
      Server.reparent_window wm.server wm.conn m.cwin ~new_parent:wm.root
        ~pos:(Geom.point abs.x abs.y);
      Server.remove_from_save_set wm.server wm.conn m.cwin
    end
  end;
  if Server.window_exists wm.server m.frame then
    Server.destroy_window wm.server m.frame;
  if (not (Xid.is_none m.icon)) && Server.window_exists wm.server m.icon then
    Server.destroy_window wm.server m.icon;
  Xid.Tbl.remove wm.table m.cwin;
  Xid.Tbl.remove wm.table m.frame;
  if not (Xid.is_none m.title) then Xid.Tbl.remove wm.table m.title

let iconify_managed wm (m : managed) =
  if not m.iconic then begin
    Server.unmap_window wm.server wm.conn m.frame;
    if wm.config.use_icon_manager then begin
      m.iconic <- true;
      Server.change_property wm.server wm.conn m.cwin ~name:Prop.wm_state_name
        (Prop.Wm_state_value { state = Prop.Iconic; icon = Xid.none });
      refresh_icon_manager wm
    end
    else begin
    let icon =
      Server.create_window wm.server wm.conn ~parent:wm.root
        ~geom:(Geom.rect wm.config.icon_x wm.next_icon_y 64 24)
        ~border:1 ~background:'i' ~label:(read_name wm m.cwin) ()
    in
    wm.next_icon_y <- wm.next_icon_y + 32;
    Server.select_input wm.server wm.conn icon [ Event.Button_press_mask ];
    Server.map_window wm.server wm.conn icon;
    m.icon <- icon;
    m.iconic <- true;
    Xid.Tbl.replace wm.table icon m;
    Server.change_property wm.server wm.conn m.cwin ~name:Prop.wm_state_name
      (Prop.Wm_state_value { state = Prop.Iconic; icon })
    end
  end

let deiconify_managed wm (m : managed) =
  if m.iconic then begin
    if (not (Xid.is_none m.icon)) && Server.window_exists wm.server m.icon then begin
      Xid.Tbl.remove wm.table m.icon;
      Server.destroy_window wm.server m.icon
    end;
    m.icon <- Xid.none;
    m.iconic <- false;
    Server.map_window wm.server wm.conn m.frame;
    Server.raise_window wm.server wm.conn m.frame;
    Server.change_property wm.server wm.conn m.cwin ~name:Prop.wm_state_name
      (Prop.Wm_state_value { state = Prop.Normal; icon = Xid.none });
    if wm.config.use_icon_manager then refresh_icon_manager wm
  end

let iconify wm cwin =
  match Xid.Tbl.find_opt wm.table cwin with
  | Some m -> iconify_managed wm m
  | None -> ()

let deiconify wm cwin =
  match Xid.Tbl.find_opt wm.table cwin with
  | Some m -> deiconify_managed wm m
  | None -> ()

let context_of wm (m : managed) win =
  if Xid.equal win m.title then "title"
  else if Xid.equal win m.icon then "icon"
  else if Xid.equal win wm.root then "root"
  else "frame"

let run_function wm (m : managed) fname =
  match fname with
  | "f.raise" -> Server.raise_window wm.server wm.conn m.frame
  | "f.lower" -> Server.lower_window wm.server wm.conn m.frame
  | "f.iconify" -> iconify_managed wm m
  | "f.deiconify" -> deiconify_managed wm m
  | "f.move" -> (
      match wm.move_grab with
      | Some _ -> ()
      | None ->
          let pointer = Server.pointer_pos wm.server in
          let fgeom = Server.geometry wm.server m.frame in
          wm.move_grab <-
            Some (m, Geom.point (pointer.px - fgeom.x) (pointer.py - fgeom.y));
          Server.grab_pointer wm.server wm.conn m.frame)
  | _ -> ()

let handle_event wm event =
  match event with
  | Event.Map_request { window; _ } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m -> deiconify_managed wm m
      | None -> manage wm window)
  | Event.Configure_request { window; changes; _ } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m ->
          let cgeom = Server.geometry wm.server m.cwin in
          let w = Option.value changes.cw ~default:cgeom.w in
          let h = Option.value changes.ch ~default:cgeom.h in
          let th =
            if Xid.is_none m.title then 0
            else (Server.geometry wm.server m.title).h
          in
          Server.move_resize wm.server wm.conn m.cwin (Geom.rect 0 th w h);
          let fgeom = Server.geometry wm.server m.frame in
          let x = Option.value changes.cx ~default:fgeom.x in
          let y = Option.value changes.cy ~default:fgeom.y in
          Server.move_resize wm.server wm.conn m.frame (Geom.rect x y w (h + th));
          if not (Xid.is_none m.title) then begin
            let tgeom = Server.geometry wm.server m.title in
            Server.move_resize wm.server wm.conn m.title { tgeom with Geom.w }
          end
      | None -> Server.configure_window wm.server wm.conn window changes)
  | Event.Destroy_notify { window } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m when Xid.equal window m.cwin -> unmanage wm m ~destroyed:true
      | Some _ | None -> ())
  | Event.Unmap_notify { window } -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m
        when Xid.equal window m.cwin
             && Server.window_exists wm.server window
             && (not (Server.is_mapped wm.server window))
             && not m.iconic ->
          unmanage wm m ~destroyed:false
      | Some _ | None -> ())
  | Event.Property_notify { window; name; _ }
    when String.equal name Prop.wm_name -> (
      match Xid.Tbl.find_opt wm.table window with
      | Some m when not (Xid.is_none m.title) ->
          Server.set_label wm.server m.title (Some (read_name wm m.cwin))
      | Some _ | None -> ())
  | Event.Button_press { window; button; _ } -> (
      match wm.move_grab with
      | Some (m, offset) ->
          let pointer = Server.pointer_pos wm.server in
          let fgeom = Server.geometry wm.server m.frame in
          Server.move_resize wm.server wm.conn m.frame
            { fgeom with Geom.x = pointer.px - offset.px; y = pointer.py - offset.py };
          Server.ungrab_pointer wm.server wm.conn;
          wm.move_grab <- None
      | None -> (
          match Xid.Tbl.find_opt wm.icon_rows window with
          | Some m ->
              deiconify_managed wm m
          | None -> (
          match Xid.Tbl.find_opt wm.table window with
          | Some m ->
              let context = context_of wm m window in
              List.iter
                (fun (b, bctx, fname) ->
                  if b = button && String.equal bctx context then
                    run_function wm m fname)
                wm.config.bindings;
              if wm.config.auto_raise then
                Server.raise_window wm.server wm.conn m.frame
          | None -> ())))
  | Event.Motion_notify { root_pos; _ } -> (
      match wm.move_grab with
      | Some (m, offset) ->
          let fgeom = Server.geometry wm.server m.frame in
          Server.move_resize wm.server wm.conn m.frame
            { fgeom with Geom.x = root_pos.px - offset.px; y = root_pos.py - offset.py }
      | None -> ())
  | Event.Button_release _ -> (
      match wm.move_grab with
      | Some _ ->
          Server.ungrab_pointer wm.server wm.conn;
          wm.move_grab <- None
      | None -> ())
  | Event.Map_notify _ | Event.Reparent_notify _ | Event.Configure_notify _
  | Event.Property_notify _ | Event.Expose _ | Event.Client_message _
  | Event.Key_press _ | Event.Enter_notify _ | Event.Leave_notify _
  | Event.Focus_in _ | Event.Focus_out _ ->
      ()

let step wm =
  let count = ref 0 in
  let rec drain () =
    match Server.next_event wm.conn with
    | Some event ->
        incr count;
        handle_event wm event;
        drain ()
    | None -> ()
  in
  drain ();
  !count

let start ?(config = default_config) server =
  let conn = Server.connect server ~name:"twm" in
  let root = Server.root server ~screen:0 in
  Server.select_input server conn root
    [
      Event.Substructure_redirect;
      Event.Substructure_notify;
      Event.Button_press_mask;
      Event.Button_release_mask;
      Event.Pointer_motion_mask;
    ];
  let wm =
    {
      server;
      conn;
      root;
      config;
      table = Xid.Tbl.create 64;
      move_grab = None;
      next_icon_y = 8;
      icon_manager = Xid.none;
      icon_rows = Xid.Tbl.create 16;
    }
  in
  if config.use_icon_manager then
    wm.icon_manager <-
      Server.create_window server conn ~parent:root ~geom:(Geom.rect 8 8 120 16)
        ~border:1 ~override_redirect:true ();
  List.iter
    (fun child ->
      if Server.is_mapped server child && not (Server.override_redirect server child)
      then manage wm child)
    (Server.children_of server root);
  wm

let shutdown wm = Server.disconnect wm.server wm.conn
