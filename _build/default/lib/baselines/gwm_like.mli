(** A gwm-style window manager baseline.

    The paper's second comparator: "policy-free, but requires command of
    the Lisp language to implement a particular look-and-feel".  This WM's
    entire policy is a {!Mlisp} program: the host calls the user-defined
    Lisp functions [(on-manage win)] and [(on-button win button context)],
    and the program drives the WM through registered primitives
    ([raise-window], [iconify-window], [set-title-height], ...).

    It exists to measure the configurability/performance trade-off from the
    other side: arbitrary policy, but every decision crosses the
    interpreter. *)

type t

val default_policy : string
(** A Lisp program reproducing roughly the {!Twm_like} policy: title bar,
    click-to-raise, button-3 iconify. *)

val start : ?policy:string -> Swm_xlib.Server.t -> (t, string) result
(** Evaluate the policy program and claim screen 0.  Returns [Error] when
    the program does not parse or its top level fails. *)

val step : t -> int
val managed_count : t -> int
val frame_of : t -> Swm_xlib.Xid.t -> Swm_xlib.Xid.t option
val eval : t -> string -> (string, string) result
(** Evaluate an expression against the running WM (gwm's interactive
    channel); returns the printed result. *)

val shutdown : t -> unit
