(** The xplaces baseline (paper §7).

    "The xplaces client attempts to do simple session management but
    assumes that X Toolkit Intrinsics options are used.  This leaves users
    of the XView toolkit or other non-Intrinsics based toolkits out in the
    cold."

    xplaces walks the current windows and writes a script of
    [command -geometry WxH+X+Y] lines — appending the Xt geometry option to
    whatever WM_COMMAND says.  A client whose toolkit does not parse
    [-geometry] (XView wants [-Wp]/[-Ws]) starts at its default place, so
    the restore silently fails for it; swm's swmhints/WM_COMMAND-matching
    approach restores both.  {!Toolkit_sim} models that difference so the
    failure is observable. *)

val snapshot : Swm_xlib.Server.t -> screen:int -> string
(** The xplaces script for the screen's current top-level client windows
    (windows carrying WM_COMMAND), one [cmd -geometry ...] line each. *)

val parse_script : string -> (string * Swm_xlib.Geom.rect) list
(** [(base command, geometry)] per line — the restart side. *)

(** How different 1990 toolkits parse a command line's geometry options. *)
module Toolkit_sim : sig
  type flavour = Xt | Xview

  val flavour_of_command : string -> flavour
  (** XView programs are recognised by their [-W*] options in WM_COMMAND;
    everything else is assumed Xt. *)

  val apply_options : flavour -> string -> default:Swm_xlib.Geom.rect -> Swm_xlib.Geom.rect
  (** Where a freshly started client puts its window given its command
      line: Xt honours [-geometry]; XView honours [-Wp x y]/[-Ws w h] and
      silently ignores [-geometry]. *)
end
