(** A small Lisp interpreter.

    gwm (Nahaboo's Generic Window Manager, the paper's "policy-free but you
    must learn Lisp" comparator) is configured in a Lisp dialect; this
    interpreter is the substrate for the {!Gwm_like} baseline, and for the
    configurability-cost benches comparing "express the policy in resources"
    against "express the policy as a program".

    Supported: integers, strings, symbols, booleans, lists; [quote], [if],
    [define], [set!], [lambda], [let], [begin], [while]; arithmetic and
    comparison; list primitives; host-registered builtins. *)

type value =
  | Int of int
  | Str of string
  | Sym of string
  | Bool of bool
  | List of value list
  | Closure of closure
  | Builtin of string * (value list -> value)

and closure

type env

exception Error of string

val parse : string -> (value list, string) result
(** Parse a program (a sequence of s-expressions). *)

val pp : Format.formatter -> value -> unit
val to_string : value -> string

val base_env : unit -> env
(** Environment with the standard builtins. *)

val define : env -> string -> value -> unit
val register : env -> string -> (value list -> value) -> unit
(** Register a host primitive. *)

val lookup : env -> string -> value option

val eval : env -> value -> value
(** Raises {!Error} on runtime errors. *)

val eval_program : env -> string -> (value, string) result
(** Parse and evaluate, returning the last expression's value. *)

val call : env -> value -> value list -> value
(** Apply a closure or builtin. *)

val truthy : value -> bool
