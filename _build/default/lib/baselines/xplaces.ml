module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop

let command_of server win =
  match Server.get_property server win ~name:Prop.wm_command with
  | Some (Prop.String s) -> Some s
  | Some (Prop.String_list argv) -> Some (String.concat " " argv)
  | Some _ | None -> None

(* xplaces sees root-relative geometry of the client window (through any
   reparenting, like the real one did by chasing WM_STATE). *)
let snapshot server ~screen =
  let root = Server.root server ~screen in
  let buf = Buffer.create 256 in
  let rec walk win =
    (match command_of server win with
    | Some command ->
        let g = Server.root_geometry server win in
        Buffer.add_string buf
          (Printf.sprintf "%s -geometry %dx%d+%d+%d\n" command g.w g.h g.x g.y)
    | None -> ());
    List.iter walk (Server.children_of server win)
  in
  List.iter walk (Server.children_of server root);
  Buffer.contents buf

let parse_script text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           (* Split at the trailing " -geometry WxH+X+Y". *)
           let words = String.split_on_char ' ' line in
           let rec split_last acc = function
             | [ "-geometry"; g ] -> Some (List.rev acc, g)
             | w :: rest -> split_last (w :: acc) rest
             | [] -> None
           in
           match split_last [] words with
           | Some (cmd_words, g) -> (
               match Geom.parse g with
               | Ok spec ->
                   let r =
                     Geom.resolve spec ~default:(Geom.rect 0 0 100 100)
                       ~within:(Geom.rect 0 0 0 0)
                   in
                   Some (String.concat " " cmd_words, r)
               | Error _ -> None)
           | None -> None)

module Toolkit_sim = struct
  type flavour = Xt | Xview

  let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

  let flavour_of_command command =
    if
      List.exists
        (fun w -> String.length w >= 2 && w.[0] = '-' && w.[1] = 'W')
        (words command)
    then Xview
    else Xt

  let apply_options flavour command ~default =
    let rec scan (geom : Geom.rect) = function
      | [] -> geom
      | "-geometry" :: g :: rest when flavour = Xt -> (
          match Geom.parse g with
          | Ok spec -> scan (Geom.resolve spec ~default:geom ~within:(Geom.rect 0 0 0 0)) rest
          | Error _ -> scan geom rest)
      | "-Wp" :: x :: y :: rest when flavour = Xview -> (
          match (int_of_string_opt x, int_of_string_opt y) with
          | Some x, Some y -> scan { geom with Geom.x; y } rest
          | _ -> scan geom rest)
      | "-Ws" :: w :: h :: rest when flavour = Xview -> (
          match (int_of_string_opt w, int_of_string_opt h) with
          | Some w, Some h -> scan { geom with Geom.w; h } rest
          | _ -> scan geom rest)
      | _ :: rest -> scan geom rest
    in
    scan default (words command)
end
