type value =
  | Int of int
  | Str of string
  | Sym of string
  | Bool of bool
  | List of value list
  | Closure of closure
  | Builtin of string * (value list -> value)

and closure = { params : string list; body : value list; captured : env }

and env = { vars : (string, value) Hashtbl.t; up : env option }

exception Error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* -------- reader -------- *)

type token = Lparen | Rparen | Quote | Atom of string | String_tok of string

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ';' ->
        (* comment to end of line *)
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '(' ->
        tokens := Lparen :: !tokens;
        incr i
    | ')' ->
        tokens := Rparen :: !tokens;
        incr i
    | '\'' ->
        tokens := Quote :: !tokens;
        incr i
    | '"' ->
        let buf = Buffer.create 16 in
        incr i;
        while !i < n && src.[!i] <> '"' do
          if src.[!i] = '\\' && !i + 1 < n then begin
            (match src.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | c -> Buffer.add_char buf c);
            i := !i + 2
          end
          else begin
            Buffer.add_char buf src.[!i];
            incr i
          end
        done;
        if !i >= n then error "unterminated string";
        incr i;
        tokens := String_tok (Buffer.contents buf) :: !tokens
    | _ ->
        let start = !i in
        while
          !i < n
          &&
          match src.[!i] with
          | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
          | _ -> true
        do
          incr i
        done;
        tokens := Atom (String.sub src start (!i - start)) :: !tokens);
  done;
  List.rev !tokens

let atom_value text =
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match text with
      | "#t" | "true" -> Bool true
      | "#f" | "false" -> Bool false
      | _ -> Sym text)

let parse src =
  try
    let rec read = function
      | [] -> error "unexpected end of input"
      | Lparen :: rest ->
          let items, rest = read_list [] rest in
          (List items, rest)
      | Rparen :: _ -> error "unexpected ')'"
      | Quote :: rest ->
          let v, rest = read rest in
          (List [ Sym "quote"; v ], rest)
      | Atom a :: rest -> (atom_value a, rest)
      | String_tok s :: rest -> (Str s, rest)
    and read_list acc = function
      | Rparen :: rest -> (List.rev acc, rest)
      | tokens ->
          let v, rest = read tokens in
          read_list (v :: acc) rest
    in
    let rec program acc tokens =
      match tokens with
      | [] -> List.rev acc
      | _ ->
          let v, rest = read tokens in
          program (v :: acc) rest
    in
    Ok (program [] (tokenize src))
  with Error msg -> Result.Error msg

let rec pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Sym s -> Format.pp_print_string ppf s
  | Bool true -> Format.pp_print_string ppf "#t"
  | Bool false -> Format.pp_print_string ppf "#f"
  | List items ->
      Format.fprintf ppf "@[<h>(%a)@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp)
        items
  | Closure _ -> Format.pp_print_string ppf "#<closure>"
  | Builtin (name, _) -> Format.fprintf ppf "#<builtin:%s>" name

let to_string v = Format.asprintf "%a" pp v

(* -------- environment -------- *)

let new_env ?up () = { vars = Hashtbl.create 16; up }

let rec lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> Some v
  | None -> ( match env.up with Some up -> lookup up name | None -> None)

let define env name v = Hashtbl.replace env.vars name v
let register env name f = define env name (Builtin (name, f))

let rec set env name v =
  if Hashtbl.mem env.vars name then Hashtbl.replace env.vars name v
  else
    match env.up with
    | Some up -> set up name v
    | None -> error "set!: unbound variable %s" name

let truthy = function
  | Bool false -> false
  | Int 0 -> false
  | List [] -> false
  | Bool true | Int _ | Str _ | Sym _ | List _ | Closure _ | Builtin _ -> true

(* -------- evaluator -------- *)

let rec eval env expr =
  match expr with
  | Int _ | Str _ | Bool _ | Closure _ | Builtin _ -> expr
  | Sym name -> (
      match lookup env name with
      | Some v -> v
      | None -> error "unbound variable %s" name)
  | List [] -> List []
  | List (Sym "quote" :: args) -> (
      match args with [ v ] -> v | _ -> error "quote: one argument expected")
  | List (Sym "if" :: args) -> (
      match args with
      | [ c; t ] -> if truthy (eval env c) then eval env t else Bool false
      | [ c; t; e ] -> if truthy (eval env c) then eval env t else eval env e
      | _ -> error "if: 2 or 3 arguments expected")
  | List (Sym "define" :: args) -> (
      match args with
      | [ Sym name; v ] ->
          define env name (eval env v);
          Sym name
      | List (Sym name :: params) :: body ->
          let params =
            List.map
              (function Sym p -> p | v -> error "bad parameter %s" (to_string v))
              params
          in
          define env name (Closure { params; body; captured = env });
          Sym name
      | _ -> error "define: bad form")
  | List (Sym "set!" :: args) -> (
      match args with
      | [ Sym name; v ] ->
          let v = eval env v in
          set env name v;
          v
      | _ -> error "set!: bad form")
  | List (Sym "lambda" :: args) -> (
      match args with
      | List params :: body when body <> [] ->
          let params =
            List.map
              (function Sym p -> p | v -> error "bad parameter %s" (to_string v))
              params
          in
          Closure { params; body; captured = env }
      | _ -> error "lambda: bad form")
  | List (Sym "let" :: args) -> (
      match args with
      | List bindings :: body when body <> [] ->
          let scope = new_env ~up:env () in
          List.iter
            (function
              | List [ Sym name; v ] -> define scope name (eval env v)
              | v -> error "let: bad binding %s" (to_string v))
            bindings;
          eval_body scope body
      | _ -> error "let: bad form")
  | List (Sym "begin" :: body) -> eval_body env body
  | List (Sym "while" :: cond :: body) ->
      while truthy (eval env cond) do
        ignore (eval_body env body)
      done;
      Bool false
  | List (Sym "and" :: body) ->
      let rec go = function
        | [] -> Bool true
        | [ last ] -> eval env last
        | e :: rest -> if truthy (eval env e) then go rest else Bool false
      in
      go body
  | List (Sym "or" :: body) ->
      let rec go = function
        | [] -> Bool false
        | e :: rest ->
            let v = eval env e in
            if truthy v then v else go rest
      in
      go body
  | List (f :: args) ->
      let fv = eval env f in
      let argv = List.map (eval env) args in
      call env fv argv

and eval_body env = function
  | [] -> Bool false
  | [ last ] -> eval env last
  | e :: rest ->
      ignore (eval env e);
      eval_body env rest

and call _env fv argv =
  match fv with
  | Builtin (_, f) -> f argv
  | Closure { params; body; captured } ->
      if List.length params <> List.length argv then
        error "arity mismatch: expected %d arguments" (List.length params);
      let scope = new_env ~up:captured () in
      List.iter2 (define scope) params argv;
      eval_body scope body
  | v -> error "not callable: %s" (to_string v)

(* -------- builtins -------- *)

let int_of = function Int n -> n | v -> error "expected integer, got %s" (to_string v)

let compare_chain name cmp args =
  let rec go = function
    | a :: (b :: _ as rest) -> if cmp (int_of a) (int_of b) then go rest else Bool false
    | [ _ ] | [] -> Bool true
  in
  match args with [] | [ _ ] -> error "%s: two arguments expected" name | _ -> go args

let base_env () =
  let env = new_env () in
  register env "+" (fun args ->
      Int (List.fold_left (fun acc v -> acc + int_of v) 0 args));
  register env "*" (fun args ->
      Int (List.fold_left (fun acc v -> acc * int_of v) 1 args));
  register env "-" (function
    | [ Int n ] -> Int (-n)
    | first :: (_ :: _ as rest) ->
        Int (List.fold_left (fun acc v -> acc - int_of v) (int_of first) rest)
    | _ -> error "-: arguments expected");
  register env "/" (function
    | [ a; b ] ->
        let d = int_of b in
        if d = 0 then error "division by zero" else Int (int_of a / d)
    | _ -> error "/: two arguments expected");
  register env "mod" (function
    | [ a; b ] ->
        let d = int_of b in
        if d = 0 then error "mod by zero" else Int (int_of a mod d)
    | _ -> error "mod: two arguments expected");
  register env "=" (compare_chain "=" ( = ));
  register env "<" (compare_chain "<" ( < ));
  register env ">" (compare_chain ">" ( > ));
  register env "<=" (compare_chain "<=" ( <= ));
  register env ">=" (compare_chain ">=" ( >= ));
  register env "not" (function [ v ] -> Bool (not (truthy v)) | _ -> error "not: one argument");
  register env "eq?" (function
    | [ a; b ] -> Bool (a = b)
    | _ -> error "eq?: two arguments");
  register env "list" (fun args -> List args);
  register env "cons" (function
    | [ v; List l ] -> List (v :: l)
    | _ -> error "cons: value and list expected");
  register env "car" (function
    | [ List (x :: _) ] -> x
    | _ -> error "car: non-empty list expected");
  register env "cdr" (function
    | [ List (_ :: rest) ] -> List rest
    | _ -> error "cdr: non-empty list expected");
  register env "null?" (function [ List [] ] -> Bool true | [ _ ] -> Bool false
    | _ -> error "null?: one argument");
  register env "length" (function
    | [ List l ] -> Int (List.length l)
    | [ Str s ] -> Int (String.length s)
    | _ -> error "length: list or string expected");
  register env "append" (fun args ->
      List
        (List.concat_map
           (function List l -> l | v -> error "append: list expected, got %s" (to_string v))
           args));
  register env "string-append" (fun args ->
      Str
        (String.concat ""
           (List.map
              (function Str s -> s | Sym s -> s | Int n -> string_of_int n
                | v -> error "string-append: %s" (to_string v))
              args)));
  register env "string=?" (function
    | [ Str a; Str b ] -> Bool (String.equal a b)
    | _ -> error "string=?: two strings expected");
  env

let eval_program env src =
  match parse src with
  | Result.Error _ as e -> e
  | Ok exprs -> (
      try Ok (List.fold_left (fun _ e -> eval env e) (Bool false) exprs)
      with Error msg -> Result.Error msg)
