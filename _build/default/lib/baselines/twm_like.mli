(** A twm-style window manager baseline.

    The paper's first comparator: "easy to use but different window
    management policies are next to impossible to implement".  This WM is
    written directly against the (simulated) Xlib — no toolkit objects —
    with a hard-coded decoration (title bar with title text and an iconify
    square) and a [.twmrc]-style flat configuration file, the separate
    initialisation file the paper's Evaluation calls twm's biggest mistake.

    It exists to measure: (a) the per-window management cost of a direct
    WM versus the toolkit-based swm (Evaluation §8), and (b) the
    expressiveness gap (fixed policy knobs versus arbitrary panels). *)

type t

(** The supported [.twmrc] subset. *)
type config = {
  border_width : int;
  title_height : int;
  no_title : string list;  (** client classes decorated without a title bar *)
  auto_raise : bool;
  icon_x : int;
  use_icon_manager : bool;
      (** twm's Icon Manager: list iconified clients in a fixed-appearance
          window instead of desktop icons (the feature the paper's icon
          holders generalise, §4.1.5) *)
  bindings : (int * string * string) list;
      (** (button, context ["title"|"icon"|"root"], function name) *)
}

val default_config : config

val parse_twmrc : string -> (config, string) result
(** Parse the flat config format:
    {v
BorderWidth 2
TitleHeight 20
NoTitle { XClock XBiff }
AutoRaise true
Button1 = : title : f.raise
    v} *)

val config_to_string : config -> string

val start : ?config:config -> Swm_xlib.Server.t -> t
(** Claim the redirect on screen 0 and manage existing windows. *)

val step : t -> int
(** Process pending events (MapRequest → manage, clicks → actions). *)

val managed_count : t -> int
val frame_of : t -> Swm_xlib.Xid.t -> Swm_xlib.Xid.t option
val icon_manager_window : t -> Swm_xlib.Xid.t option
val iconify : t -> Swm_xlib.Xid.t -> unit
val deiconify : t -> Swm_xlib.Xid.t -> unit
val shutdown : t -> unit
