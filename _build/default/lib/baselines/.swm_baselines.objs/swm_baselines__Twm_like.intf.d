lib/baselines/twm_like.mli: Swm_xlib
