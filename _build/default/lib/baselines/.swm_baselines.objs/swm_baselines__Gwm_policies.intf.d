lib/baselines/gwm_policies.mli:
