lib/baselines/mlisp.ml: Buffer Format Hashtbl List Printf Result String
