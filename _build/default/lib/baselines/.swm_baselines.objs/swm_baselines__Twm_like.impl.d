lib/baselines/twm_like.ml: Buffer List Option Printf String Swm_xlib
