lib/baselines/gwm_like.mli: Swm_xlib
