lib/baselines/xplaces.mli: Swm_xlib
