lib/baselines/gwm_like.ml: List Mlisp Option String Swm_xlib
