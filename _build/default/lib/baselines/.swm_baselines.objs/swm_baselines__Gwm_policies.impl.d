lib/baselines/gwm_policies.ml: Gwm_like
