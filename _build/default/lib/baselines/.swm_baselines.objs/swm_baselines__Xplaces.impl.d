lib/baselines/xplaces.ml: Buffer List Printf String Swm_xlib
