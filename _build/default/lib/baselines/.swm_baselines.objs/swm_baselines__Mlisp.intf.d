lib/baselines/mlisp.mli: Format
