(** Window decoration (paper §4.1.1).

    A decoration panel describes what a client looks like after it is
    reparented.  It is an ordinary panel definition containing a panel
    object called [client] (where the client window goes) and optionally a
    button/text object called [name] (which displays WM_NAME).  Which panel
    decorates which client comes from the (class/instance/shaped/sticky-
    specific) [decoration] resource; the value [none] (or a missing panel
    definition) leaves the client undecorated. *)

val decoration_name : Ctx.t -> Ctx.client -> string option
(** The resource value, [None] for "no decoration". *)

val build : Ctx.t -> Ctx.client -> at:Swm_xlib.Geom.point -> unit
(** Construct and realize the decoration for a client whose window currently
    sits on the root, reparent the client into the frame (adding it to the
    save-set), position the frame at [at] (coordinates in the effective
    parent — desktop or root), write SWM_ROOT, and attach resize corners if
    the panel asks for them.  Undecorated clients are reparented directly
    into the effective parent. *)

val teardown : Ctx.t -> Ctx.client -> to_root:bool -> unit
(** Destroy the decoration; when [to_root], first reparent the client back
    to the real root preserving its absolute position (unmanage / WM exit).
    Otherwise the client is left unparented inside the effective parent
    (redecoration). *)

val redecorate : Ctx.t -> Ctx.client -> unit
(** Re-query the decoration resource and rebuild the frame in place — used
    when the scope the decoration depends on changes (sticky, shaped). *)

val client_resized : Ctx.t -> Ctx.client -> int * int -> unit
(** Honour a client resize: grow the [client] panel, re-lay the frame out,
    resize the client window, and send the synthetic ConfigureNotify. *)

val move_frame : Ctx.t -> Ctx.client -> Swm_xlib.Geom.point -> unit
(** Move the frame (parent-relative coordinates) and tell the client via a
    synthetic ConfigureNotify. *)

val update_name : Ctx.t -> Ctx.client -> unit
(** Refresh the [name] object from WM_NAME after a PropertyNotify. *)

val frame_of_object : Ctx.t -> Swm_oi.Wobj.t -> Ctx.client option
(** The client whose decoration tree contains this object, if any. *)
