(** ICCCM glue, and swm's Virtual-Desktop reinterpretation of it
    (paper §6.3).

    - {b SWM_ROOT}: when swm reparents a window it writes a property holding
      the window id of its effective root (real root or Virtual Desktop
      window), updated whenever that changes (stick/unstick, desktop
      switch), so toolkits can position popups correctly.
    - {b USPosition vs PPosition}: user-specified positions are absolute
      Virtual-Desktop coordinates; program-specified positions are relative
      to the currently visible portion of the desktop.
    - {b WM_STATE}: maintained on every state transition.
    - {b Synthetic ConfigureNotify}: sent with root-relative coordinates when
      the WM moves a client without resizing it. *)

type placement =
  | Place_absolute of Swm_xlib.Geom.point  (** USPosition: desktop coords *)
  | Place_viewport of Swm_xlib.Geom.point  (** PPosition: viewport-relative *)
  | Place_default  (** neither hint: swm picks a spot *)

val read_placement : Ctx.t -> Swm_xlib.Xid.t -> placement
(** Interpret WM_NORMAL_HINTS and the window's current geometry. *)

val read_class : Ctx.t -> Swm_xlib.Xid.t -> string * string
(** [(instance, class)], defaulting to [("unknown", "Unknown")]. *)

val read_name : Ctx.t -> Swm_xlib.Xid.t -> string
val read_icon_name : Ctx.t -> Swm_xlib.Xid.t -> string
val read_command : Ctx.t -> Swm_xlib.Xid.t -> string option
val read_client_machine : Ctx.t -> Swm_xlib.Xid.t -> string option
val read_wm_hints : Ctx.t -> Swm_xlib.Xid.t -> Swm_xlib.Prop.wm_hints
val read_size_hints : Ctx.t -> Swm_xlib.Xid.t -> Swm_xlib.Prop.size_hints

val constrain_size : Swm_xlib.Prop.size_hints -> int * int -> int * int
(** Apply min/max size and resize-increment hints to a requested client
    size (ICCCM: increments are measured from the minimum size, like
    xterm's character cells). *)

val set_wm_state : Ctx.t -> Ctx.client -> Swm_xlib.Prop.wm_state -> unit
(** Update both the client record and the WM_STATE property. *)

val set_swm_root : Ctx.t -> Swm_xlib.Xid.t -> root:Swm_xlib.Xid.t -> unit

val send_synthetic_configure : Ctx.t -> Ctx.client -> unit
(** ICCCM: tell the client where it is, in coordinates relative to its
    (virtual) root, without a real resize. *)
