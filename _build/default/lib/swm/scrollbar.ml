module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Event = Swm_xlib.Event

let bar_thickness = 12

let wanted (ctx : Ctx.t) ~screen =
  match Config.query1 ctx.cfg ~screen "scrollbars" with
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "true" | "yes" | "on" | "1" -> true
      | _ -> false)
  | None -> false

let make_bar (ctx : Ctx.t) ~screen ~geom =
  let scr = Ctx.screen ctx screen in
  let bar =
    Server.create_window ctx.server ctx.conn ~parent:scr.root ~geom
      ~override_redirect:true ~background:'-' ()
  in
  Server.select_input ctx.server ctx.conn bar
    [ Event.Button_press_mask; Event.Button_release_mask ];
  let thumb =
    Server.create_window ctx.server ctx.conn ~parent:bar
      ~geom:(Geom.rect 0 0 10 10) ~background:'=' ()
  in
  Server.map_window ctx.server ctx.conn thumb;
  Server.map_window ctx.server ctx.conn bar;
  (bar, thumb)

let thumb_geometry ~bar_len ~desktop_len ~view_pos ~view_len =
  let pos = view_pos * bar_len / desktop_len in
  let len = max 4 (view_len * bar_len / desktop_len) in
  (pos, len)

let refresh (ctx : Ctx.t) ~screen =
  let scr = Ctx.screen ctx screen in
  match scr.vdesk with
  | None -> ()
  | Some vdesk ->
      let dw, dh = vdesk.vsize in
      let vp = Vdesk.viewport ctx ~screen in
      (match scr.hbar with
      | Some (bar, thumb) when Server.window_exists ctx.server bar ->
          let bar_len = (Server.geometry ctx.server bar).w in
          let pos, len =
            thumb_geometry ~bar_len ~desktop_len:dw ~view_pos:vp.x ~view_len:vp.w
          in
          Server.move_resize ctx.server ctx.conn thumb
            (Geom.rect pos 1 len (bar_thickness - 2))
      | Some _ | None -> ());
      match scr.vbar with
      | Some (bar, thumb) when Server.window_exists ctx.server bar ->
          let bar_len = (Server.geometry ctx.server bar).h in
          let pos, len =
            thumb_geometry ~bar_len ~desktop_len:dh ~view_pos:vp.y ~view_len:vp.h
          in
          Server.move_resize ctx.server ctx.conn thumb
            (Geom.rect 1 pos (bar_thickness - 2) len)
      | Some _ | None -> ()

let create (ctx : Ctx.t) ~screen =
  let scr = Ctx.screen ctx screen in
  if scr.vdesk <> None && wanted ctx ~screen then begin
    let sw, sh = Server.screen_size ctx.server ~screen in
    scr.hbar <-
      Some
        (make_bar ctx ~screen
           ~geom:(Geom.rect 0 (sh - bar_thickness) (sw - bar_thickness) bar_thickness));
    scr.vbar <-
      Some
        (make_bar ctx ~screen
           ~geom:(Geom.rect (sw - bar_thickness) 0 bar_thickness (sh - bar_thickness)));
    refresh ctx ~screen
  end

let classify (ctx : Ctx.t) ~screen win =
  let scr = Ctx.screen ctx screen in
  let matches = function
    | Some (bar, thumb) -> Xid.equal win bar || Xid.equal win thumb
    | None -> false
  in
  if matches scr.hbar then Some `Horizontal
  else if matches scr.vbar then Some `Vertical
  else None

let handle_press (ctx : Ctx.t) ~screen direction ~bar_pos =
  let scr = Ctx.screen ctx screen in
  match scr.vdesk with
  | None -> ()
  | Some vdesk ->
      let dw, dh = vdesk.vsize in
      let sw, sh = Server.screen_size ctx.server ~screen in
      let o = Vdesk.offset ctx ~screen in
      (match direction with
      | `Horizontal -> (
          match scr.hbar with
          | Some (bar, _) ->
              let bar_len = (Server.geometry ctx.server bar).w in
              let x = (bar_pos.Geom.px * dw / max 1 bar_len) - (sw / 2) in
              Vdesk.pan_to ctx ~screen (Geom.point x o.py)
          | None -> ())
      | `Vertical -> (
          match scr.vbar with
          | Some (bar, _) ->
              let bar_len = (Server.geometry ctx.server bar).h in
              let y = (bar_pos.Geom.py * dh / max 1 bar_len) - (sh / 2) in
              Vdesk.pan_to ctx ~screen (Geom.point o.px y)
          | None -> ()));
      refresh ctx ~screen
