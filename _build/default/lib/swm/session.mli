(** Session management (paper §7).

    swm does session management in two steps: an [swmhints] invocation per
    client gives swm hints about the client's previous state (appended to a
    root-window property), and swm interprets those hints when the client's
    window is reparented, matching on WM_COMMAND (and WM_CLIENT_MACHINE for
    remote clients) and restoring geometry, icon position, sticky state and
    normal/iconic state.

    [f.places] writes a file usable as an [.xinitrc] replacement: for each
    client an [swmhints] line followed by the client's own command line
    (with a customizable remote-start wrapper for clients on other hosts). *)

type hint = {
  geometry : Swm_xlib.Geom.rect;
  icon_geometry : Swm_xlib.Geom.point option;
  state : Swm_xlib.Prop.wm_state;
  sticky : bool;
  command : string;        (** the WM_COMMAND string, verbatim *)
  host : string option;    (** WM_CLIENT_MACHINE, when remote *)
}

val pp_hint : Format.formatter -> hint -> unit

(** {1 swmhints command-line encoding} *)

val hint_to_args : hint -> string
(** Render as an [swmhints] invocation's arguments, e.g.
    [-geometry 120x120+1010+359 -icongeometry +0+0 -state NormalState
     -cmd "oclock -geom 100x100"]. *)

val hint_of_args : string -> (hint, string) result
(** Parse the argument string back (shell-style quoting for [-cmd]). *)

(** {1 The restart table} *)

type table

val create_table : unit -> table
val add : table -> hint -> unit
val size : table -> int

val load : table -> string -> (int, string) result
(** Load the contents of the SWM_PLACES root property (one swmhints argument
    string per line); returns the number of entries. *)

val take_match : table -> command:string -> host:string option -> hint option
(** Find and *remove* the entry whose command (and host, when both sides
    have one) matches — each hint restores at most one window; two windows
    with identical WM_COMMAND cannot be distinguished (a documented
    limitation in the paper). *)

(** {1 The places file} *)

val places_file :
  ?remote_format:string ->
  display:string ->
  local_host:string ->
  hint list ->
  string
(** Generate the [.xinitrc]-replacement text.  [remote_format] is the
    customizable remote-start string (paper §7.1) with [%h] = host,
    [%d] = display, [%c] = command; default
    ["rsh %h \"env DISPLAY=%d %c\" &"]. *)

val parse_places_file : string -> (hint list, string) result
(** Recover the hints from a places file (used to restart a session). *)
