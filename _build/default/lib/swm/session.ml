module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop

type hint = {
  geometry : Geom.rect;
  icon_geometry : Geom.point option;
  state : Prop.wm_state;
  sticky : bool;
  command : string;
  host : string option;
}

let pp_hint ppf h =
  Format.fprintf ppf "hint{%a state=%a cmd=%S%s}" Geom.pp_rect h.geometry
    Prop.pp_wm_state h.state h.command
    (match h.host with Some host -> " @" ^ host | None -> "")

(* -------- swmhints argument encoding -------- *)

let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let geometry_string (r : Geom.rect) = Printf.sprintf "%dx%d+%d+%d" r.w r.h r.x r.y

let hint_to_args h =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ("-geometry " ^ geometry_string h.geometry);
  (match h.icon_geometry with
  | Some p -> Buffer.add_string buf (Printf.sprintf " -icongeometry +%d+%d" p.px p.py)
  | None -> ());
  Buffer.add_string buf (" -state " ^ Prop.wm_state_to_string h.state);
  if h.sticky then Buffer.add_string buf " -sticky";
  (match h.host with
  | Some host -> Buffer.add_string buf (" -host " ^ host)
  | None -> ());
  Buffer.add_string buf (" -cmd " ^ quote h.command);
  Buffer.contents buf

(* Split shell-style: whitespace-separated words; double quotes group, and a
   backslash-quote escapes a quote inside them. *)
let split_args s =
  let words = ref [] in
  let buf = Buffer.create 16 in
  let in_quotes = ref false in
  let pending = ref false in
  let flush () =
    if !pending then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf;
      pending := false
    end
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        in_quotes := not !in_quotes;
        pending := true
    | '\\' when !i + 1 < n && s.[!i + 1] = '"' ->
        Buffer.add_char buf '"';
        pending := true;
        incr i
    | (' ' | '\t') when not !in_quotes -> flush ()
    | c ->
        Buffer.add_char buf c;
        pending := true);
    incr i
  done;
  flush ();
  if !in_quotes then Error "unterminated quote" else Ok (List.rev !words)

let hint_of_args s =
  match split_args s with
  | Error _ as e -> e
  | Ok words ->
      let geometry = ref None
      and icon_geometry = ref None
      and state = ref Prop.Normal
      and sticky = ref false
      and command = ref None
      and host = ref None
      and err = ref None in
      let rec loop = function
        | [] -> ()
        | "-geometry" :: g :: rest -> (
            match Geom.parse g with
            | Ok spec ->
                let r =
                  Geom.resolve spec ~default:(Geom.rect 0 0 100 100)
                    ~within:(Geom.rect 0 0 0 0)
                in
                (* Resolve against a zero extent: From_start offsets come out
                   directly; session geometry always uses +X+Y. *)
                geometry := Some r;
                loop rest
            | Error msg -> err := Some ("bad -geometry: " ^ msg))
        | "-icongeometry" :: g :: rest -> (
            match Geom.parse g with
            | Ok { xoff = Some (Geom.From_start x); yoff = Some (Geom.From_start y); _ }
              ->
                icon_geometry := Some (Geom.point x y);
                loop rest
            | Ok _ -> err := Some "bad -icongeometry"
            | Error msg -> err := Some ("bad -icongeometry: " ^ msg))
        | "-state" :: s :: rest -> (
            match Prop.wm_state_of_string s with
            | Some st ->
                state := st;
                loop rest
            | None -> err := Some ("unknown state " ^ s))
        | "-sticky" :: rest ->
            sticky := true;
            loop rest
        | "-host" :: h :: rest ->
            host := Some h;
            loop rest
        | "-cmd" :: c :: rest ->
            command := Some c;
            loop rest
        | w :: _ -> err := Some ("unknown swmhints option " ^ w)
      in
      loop words;
      (match !err with
      | Some msg -> Error msg
      | None -> (
          match (!geometry, !command) with
          | None, _ -> Error "missing -geometry"
          | _, None -> Error "missing -cmd"
          | Some geometry, Some command ->
              Ok
                {
                  geometry;
                  icon_geometry = !icon_geometry;
                  state = !state;
                  sticky = !sticky;
                  command;
                  host = !host;
                }))

(* -------- restart table -------- *)

type table = { mutable hints : hint list }

let create_table () = { hints = [] }
let add table hint = table.hints <- table.hints @ [ hint ]
let size table = List.length table.hints

let load table text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec loop n = function
    | [] -> Ok n
    | line :: rest -> (
        match hint_of_args line with
        | Ok hint ->
            add table hint;
            loop (n + 1) rest
        | Error msg -> Error (Printf.sprintf "%s in %S" msg line))
  in
  loop 0 lines

let take_match table ~command ~host =
  let host_matches hint =
    match (hint.host, host) with
    | Some a, Some b -> String.equal a b
    | None, _ | _, None -> true
  in
  let rec extract acc = function
    | [] -> None
    | hint :: rest when String.equal hint.command command && host_matches hint ->
        table.hints <- List.rev_append acc rest;
        Some hint
    | hint :: rest -> extract (hint :: acc) rest
  in
  extract [] table.hints

(* -------- places file -------- *)

let default_remote_format = "rsh %h \"env DISPLAY=%d %c\" &"

let expand_format fmt ~host ~display ~command =
  let buf = Buffer.create (String.length fmt + 32) in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 'h' -> Buffer.add_string buf host
      | 'd' -> Buffer.add_string buf display
      | 'c' -> Buffer.add_string buf command
      | c ->
          Buffer.add_char buf '%';
          Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let places_file ?(remote_format = default_remote_format) ~display ~local_host hints =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "#!/bin/sh\n# written by swm f.places\n";
  List.iter
    (fun hint ->
      Buffer.add_string buf ("swmhints " ^ hint_to_args hint ^ "\n");
      let start =
        match hint.host with
        | Some host when not (String.equal host local_host) ->
            expand_format remote_format ~host ~display ~command:hint.command
        | Some _ | None -> hint.command ^ " &"
      in
      Buffer.add_string buf (start ^ "\n"))
    hints;
  Buffer.contents buf

let parse_places_file text =
  let lines = String.split_on_char '\n' text in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if String.length line > 9 && String.sub line 0 9 = "swmhints " then
          match hint_of_args (String.sub line 9 (String.length line - 9)) with
          | Ok hint -> loop (hint :: acc) rest
          | Error msg -> Error (Printf.sprintf "%s in %S" msg line)
        else loop acc rest
  in
  loop [] lines
