(** Root panels (paper §4.1.4, Figure 2).

    Static panels — usually of buttons — that are always visible: "a menu
    that is always visible".  Unlike root icons they are treated like other
    client windows: they get reparented and can be iconified, so each panel
    is realized as a top-level window and then handed to the normal manage
    path. *)

val create : Ctx.t -> screen:int -> Swm_xlib.Xid.t list
(** Build the panels named by the [rootPanels] resource and return their
    top-level windows for {!Wm} to manage.  Each panel [P] may carry a
    [panel.P.geometry] resource for its initial position. *)
