(** The Virtual Desktop (paper §6).

    The Virtual Desktop makes the root window effectively larger than the
    display: swm creates a large desktop window as a child of the real root
    and reparents managed frames into it; panning moves the desktop window
    to negative offsets.  Because the desktop is an ordinary X window,
    clients inside it get no ConfigureNotify when it pans — they have not
    moved with respect to *their* root (§6.3.1) — which is exactly the
    behaviour this module reproduces.

    Sticky windows (§6.2) stay children of the real root, above the desktop
    window, so they "appear stuck to the glass".

    Multiple desktops (mentioned as enabled-by-SWM_ROOT in §6.3.1; the
    paper's future-work aside) are supported as additional desktop windows
    of which one is mapped at a time. *)

val create : Ctx.t -> screen:int -> size:int * int -> ?desktops:int -> unit -> Ctx.vdesk
(** Create the desktop window(s) and record them on the screen state.
    Raises [Invalid_argument] if [size] is smaller than the screen or if
    [desktops < 1].  The X limit of 32767x32767 is enforced. *)

val effective_parent : Ctx.t -> screen:int -> sticky:bool -> Swm_xlib.Xid.t
(** Where a (frame) window should live: the current desktop window, or the
    real root for sticky windows / screens without a virtual desktop. *)

val effective_root : Ctx.t -> Ctx.client -> Swm_xlib.Xid.t
(** The root the client's SWM_ROOT property should name right now. *)

val offset : Ctx.t -> screen:int -> Swm_xlib.Geom.point
(** Current pan offset: desktop coordinates of the screen's top-left. *)

val viewport : Ctx.t -> screen:int -> Swm_xlib.Geom.rect
(** The visible portion of the desktop, in desktop coordinates. *)

val pan_to : Ctx.t -> screen:int -> Swm_xlib.Geom.point -> unit
(** Pan so the viewport's top-left is at the given desktop coordinate
    (clamped to the desktop bounds).  No-op without a virtual desktop. *)

val pan_by : Ctx.t -> screen:int -> dx:int -> dy:int -> unit

val resize_desktop : Ctx.t -> screen:int -> int * int -> unit
(** Resizing the panner resizes the underlying desktop at run time (§6.1). *)

val switch_desktop : Ctx.t -> screen:int -> int -> unit
(** Map desktop [n] instead of the current one and update every affected
    client's SWM_ROOT.  Raises [Invalid_argument] for an out-of-range
    index. *)

val current_desktop : Ctx.t -> screen:int -> int
val desktop_count : Ctx.t -> screen:int -> int

val set_sticky : Ctx.t -> Ctx.client -> bool -> unit
(** Stick or unstick: reparent the frame between desktop and real root,
    preserving its on-glass position, and update SWM_ROOT (§6.2).  The
    caller re-queries decoration if it depends on stickiness. *)

val is_desktop_window : Ctx.t -> screen:int -> Swm_xlib.Xid.t -> bool
