lib/swm/icccm.ml: Ctx Option String Swm_xlib
