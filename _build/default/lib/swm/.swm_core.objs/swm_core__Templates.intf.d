lib/swm/templates.mli:
