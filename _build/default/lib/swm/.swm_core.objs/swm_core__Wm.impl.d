lib/swm/wm.ml: Array Bindings Config Ctx Decoration Functions Hashtbl Icccm Icons List Option Panner Root_panel Scrollbar Session String Swm_oi Swm_xlib Swm_xrdb Swmcmd Templates Vdesk
