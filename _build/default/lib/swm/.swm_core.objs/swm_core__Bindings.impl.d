lib/swm/bindings.ml: Format List Option Printf String Swm_xlib
