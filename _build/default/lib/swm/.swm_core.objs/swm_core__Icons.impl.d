lib/swm/icons.ml: Config Ctx Icccm List Option Printf String Swm_oi Swm_xlib Vdesk
