lib/swm/vdesk.mli: Ctx Swm_xlib
