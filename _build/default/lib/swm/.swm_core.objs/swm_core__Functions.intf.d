lib/swm/functions.mli: Bindings Ctx Session Swm_oi
