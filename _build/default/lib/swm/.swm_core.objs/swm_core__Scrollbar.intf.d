lib/swm/scrollbar.mli: Ctx Swm_xlib
