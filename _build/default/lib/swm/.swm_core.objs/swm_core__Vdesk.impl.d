lib/swm/vdesk.ml: Array Ctx Icccm List Swm_xlib
