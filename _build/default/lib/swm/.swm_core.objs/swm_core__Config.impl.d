lib/swm/config.ml: List Printf String Swm_xlib Swm_xrdb
