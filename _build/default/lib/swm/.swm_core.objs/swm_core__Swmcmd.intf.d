lib/swm/swmcmd.mli: Ctx Swm_xlib
