lib/swm/config.mli: Swm_xlib Swm_xrdb
