lib/swm/functions.ml: Bindings Config Ctx Decoration Icccm Icons List Option Out_channel Panner Printf Session String Swm_oi Swm_xlib Vdesk
