lib/swm/icccm.mli: Ctx Swm_xlib
