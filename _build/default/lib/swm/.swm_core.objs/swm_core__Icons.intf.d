lib/swm/icons.mli: Ctx Swm_oi Swm_xlib
