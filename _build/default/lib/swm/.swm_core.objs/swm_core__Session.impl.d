lib/swm/session.ml: Buffer Format List Printf String Swm_xlib
