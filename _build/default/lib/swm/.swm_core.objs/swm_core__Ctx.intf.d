lib/swm/ctx.mli: Bindings Config Format Hashtbl Logs Session Swm_oi Swm_xlib
