lib/swm/swmcmd.ml: Ctx Functions List String Swm_xlib
