lib/swm/ctx.ml: Array Bindings Config Format Hashtbl List Logs Session String Swm_oi Swm_xlib
