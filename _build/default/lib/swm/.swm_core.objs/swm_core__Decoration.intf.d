lib/swm/decoration.mli: Ctx Swm_oi Swm_xlib
