lib/swm/root_panel.ml: Config Ctx List String Swm_oi Swm_xlib
