lib/swm/wm.mli: Ctx Swm_xlib
