lib/swm/bindings.mli: Format Swm_xlib
