lib/swm/root_panel.mli: Ctx Swm_xlib
