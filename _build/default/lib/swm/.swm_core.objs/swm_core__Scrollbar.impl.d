lib/swm/scrollbar.ml: Config Ctx String Swm_xlib Vdesk
