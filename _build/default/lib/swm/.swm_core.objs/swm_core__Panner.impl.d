lib/swm/panner.ml: Array Config Ctx List Scrollbar String Swm_xlib Vdesk
