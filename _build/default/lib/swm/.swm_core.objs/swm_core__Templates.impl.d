lib/swm/templates.ml:
