lib/swm/session.mli: Format Swm_xlib
