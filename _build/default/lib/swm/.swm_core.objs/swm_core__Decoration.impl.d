lib/swm/decoration.ml: Config Ctx Icccm List String Swm_oi Swm_xlib Vdesk
