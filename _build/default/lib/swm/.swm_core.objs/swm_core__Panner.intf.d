lib/swm/panner.mli: Ctx Swm_xlib
