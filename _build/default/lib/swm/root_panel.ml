module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Wobj = Swm_oi.Wobj
module Panel_spec = Swm_oi.Panel_spec

let split_words s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let create (ctx : Ctx.t) ~screen =
  match Config.query1 ctx.cfg ~screen "rootPanels" with
  | None -> []
  | Some names ->
      let scr = Ctx.screen ctx screen in
      let lookup name = Config.panel_definition ctx.cfg ~screen name in
      List.filter_map
        (fun name ->
          match Panel_spec.build scr.tk ~lookup ~kind:Wobj.Panel ~name with
          | Error _ -> None
          | Ok panel ->
              let pos =
                match
                  Config.query ctx.cfg ~screen ~names:[ "panel"; name; "geometry" ]
                    ~classes:[ "Panel"; String.capitalize_ascii name; "Geometry" ]
                with
                | Some g -> (
                    match Geom.parse g with
                    | Ok spec ->
                        let sw, sh = Server.screen_size ctx.server ~screen in
                        let r =
                          Geom.resolve spec ~default:(Geom.rect 0 0 100 40)
                            ~within:(Geom.rect 0 0 sw sh)
                        in
                        Geom.point r.x r.y
                    | Error _ -> Geom.point 8 8)
                | None -> Geom.point 8 8
              in
              Wobj.realize panel ~parent_window:scr.root ~at:pos;
              let win = Wobj.window panel in
              Server.change_property ctx.server ctx.conn win ~name:Prop.wm_class
                (Prop.Wm_class { instance = name; class_ = "SwmPanel" });
              Server.change_property ctx.server ctx.conn win ~name:Prop.wm_name
                (Prop.String name);
              (* The panel.geometry resource is a user-given position. *)
              Server.change_property ctx.server ctx.conn win
                ~name:Prop.wm_normal_hints
                (Prop.Size_hints { Prop.default_size_hints with us_position = true });
              scr.root_panels <- scr.root_panels @ [ panel ];
              Some win)
        (split_words names)
