module Server = Swm_xlib.Server
module Prop = Swm_xlib.Prop

let send server conn ~screen command =
  let root = Server.root server ~screen in
  Server.append_string_property server conn root ~name:Prop.swm_command command

let handle_property_change (ctx : Ctx.t) ~screen =
  let root = (Ctx.screen ctx screen).root in
  match Server.get_property ctx.server root ~name:Prop.swm_command with
  | Some (Prop.String text) ->
      Server.delete_property ctx.server ctx.conn root ~name:Prop.swm_command;
      let inv = Functions.invocation ~screen () in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line <> "" then
            match Functions.execute_string ctx inv line with
            | Ok () -> ()
            | Error _ -> ())
        (String.split_on_char '\n' text)
  | Some _ | None -> ()
