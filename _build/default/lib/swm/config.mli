(** swm's resource scoping (paper §3).

    All swm resources begin with the window-manager name or class ([swm] /
    [Swm], the former having precedence because a name match outranks a
    class match), followed by two components giving the colour capability
    and screen number:

    {v
swm.monochrome.screen0.xterm.console.decoration: noTitlePanel
Swm*panel.openLook: ...
    v}

    Specific resources additionally carry the client's WM_CLASS class and
    instance; and swm prepends the strings [shaped] and/or [sticky] when the
    client window is shaped or sticky, so decorations can depend on those
    states (paper §5, §6.2). *)

type t

val create : Swm_xrdb.Xrdb.t -> Swm_xlib.Server.t -> t
val db : t -> Swm_xrdb.Xrdb.t
val server : t -> Swm_xlib.Server.t

val query :
  t -> screen:int -> names:string list -> classes:string list -> string option
(** Non-specific resource: [swm.<color|monochrome>.screen<N>.<suffix>]. *)

val query1 : t -> screen:int -> string -> string option
(** [query1 t ~screen "panner"] — single-component suffix, class derived by
    capitalisation. *)

(** Identity and state of a client window, for specific-resource lookup. *)
type client_scope = {
  instance : string;
  class_ : string;
  shaped : bool;
  sticky : bool;
}

val query_client : t -> screen:int -> client_scope -> string -> string option
(** Specific resource for one client, e.g.
    [query_client t ~screen scope "decoration"].  Falls back to matching
    non-specific entries per ordinary Xrm precedence (a
    [swm*decoration: foo] entry matches any client). *)

val query_client_bool :
  t -> screen:int -> client_scope -> string -> default:bool -> bool

val object_query :
  t -> screen:int -> names:string list -> classes:string list -> string option
(** The lookup function handed to the OI toolkit: resolves an object
    attribute path (e.g. [button.foo.bindings]) under the swm prefix. *)

val panel_definition : t -> screen:int -> string -> string option
(** The definition string of panel [name] ([swm*panel.<name>]). *)

val menu_definition : t -> screen:int -> string -> string option
