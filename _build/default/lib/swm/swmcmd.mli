(** Out-of-process command execution (paper §4.3).

    Any client can drive swm by writing command strings to the SWM_COMMAND
    property on a root window; swm reads and deletes the property and
    executes each line.  Functions that need a window put swm into
    prompting mode (the pointer "changes to a question mark") — the next
    button press selects the target. *)

val send :
  Swm_xlib.Server.t -> Swm_xlib.Server.conn -> screen:int -> string -> unit
(** Client side: append one command line to the root property, as the
    [swmcmd] shell utility does. *)

val handle_property_change : Ctx.t -> screen:int -> unit
(** WM side: called on PropertyNotify for SWM_COMMAND — drain and execute.
    Errors in individual lines are ignored (a real swm would beep). *)
