module Server = Swm_xlib.Server
module Xrdb = Swm_xrdb.Xrdb

type t = { db : Xrdb.t; srv : Server.t }

let create db srv = { db; srv }
let db t = t.db
let server t = t.srv

let capitalize = String.capitalize_ascii

let prefix t ~screen =
  let mono = Server.screen_monochrome t.srv ~screen in
  let color_name = if mono then "monochrome" else "color" in
  let screen_name = Printf.sprintf "screen%d" screen in
  ( [ "swm"; color_name; screen_name ],
    [ "Swm"; capitalize color_name; "Screen" ] )

let query t ~screen ~names ~classes =
  let pn, pc = prefix t ~screen in
  Xrdb.query t.db ~names:(pn @ names) ~classes:(pc @ classes)

let query1 t ~screen name =
  query t ~screen ~names:[ name ] ~classes:[ capitalize name ]

type client_scope = {
  instance : string;
  class_ : string;
  shaped : bool;
  sticky : bool;
}

(* Specific-resource query: the class and the instance are *separate*
   components in swm's syntax (swm.color.screen0.XClock.xclock.decoration),
   so the query carries two client levels — one matchable by class, one by
   instance name.  [shaped] and [sticky] state components are inserted
   before them when applicable, so decorations can depend on those states. *)
let query_client t ~screen scope resource =
  let pn, pc = prefix t ~screen in
  let state_names, state_classes =
    List.split
      (List.filter_map
         (fun (set, tag) -> if set then Some (tag, capitalize tag) else None)
         [ (scope.shaped, "shaped"); (scope.sticky, "sticky") ])
  in
  let names =
    pn @ state_names @ [ scope.instance; scope.instance; resource ]
  and classes =
    pc @ state_classes @ [ scope.class_; scope.class_; capitalize resource ]
  in
  Xrdb.query t.db ~names ~classes

let query_client_bool t ~screen scope resource ~default =
  match query_client t ~screen scope resource with
  | None -> default
  | Some v -> (
      match String.lowercase_ascii (String.trim v) with
      | "true" | "yes" | "on" | "1" -> true
      | "false" | "no" | "off" | "0" -> false
      | _ -> default)

let object_query t ~screen ~names ~classes = query t ~screen ~names ~classes

let panel_definition t ~screen name =
  query t ~screen ~names:[ "panel"; name ] ~classes:[ "Panel"; capitalize name ]

let menu_definition t ~screen name =
  query t ~screen ~names:[ "menu"; name ] ~classes:[ "Menu"; capitalize name ]
