module Keysym = Swm_xlib.Keysym
module Event = Swm_xlib.Event

type event_pattern =
  | Button of int * Keysym.modifiers
  | Button_up of int * Keysym.modifiers
  | Key of Keysym.t * Keysym.modifiers
  | Enter
  | Leave
  | Drop

type func_call = { fname : string; farg : string option }
type binding = { pattern : event_pattern; funcs : func_call list }

exception Syntax of string

(* The grammar is token-oriented:
     binding  ::= modifiers? '<' event '>' keysym? ':' func+
     func     ::= name | name '(' arg ')'
   A function list ends where the next binding starts, i.e. at a token that
   contains '<' or is a modifier name directly preceding one. *)

type token = Langle_event of string | Colon | Word of string

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let fail msg = raise (Syntax (Printf.sprintf "%s at index %d" msg !i)) in
  while !i < n do
    match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ':' ->
        tokens := Colon :: !tokens;
        incr i
    | '<' -> (
        match String.index_from_opt src !i '>' with
        | None -> fail "unterminated '<'"
        | Some close ->
            tokens := Langle_event (String.sub src (!i + 1) (close - !i - 1)) :: !tokens;
            i := close + 1)
    | _ ->
        let start = !i in
        (* Words may carry a parenthesised argument which can contain
           spaces, e.g. f.exec(xterm -geom 80x24). *)
        let depth = ref 0 in
        while
          !i < n
          &&
          match src.[!i] with
          | '(' ->
              incr depth;
              true
          | ')' ->
              decr depth;
              true
          | ' ' | '\t' | '\n' | '\r' | ':' | '<' -> !depth > 0
          | _ -> true
        do
          incr i
        done;
        tokens := Word (String.sub src start (!i - start)) :: !tokens
  done;
  List.rev !tokens

let parse_func word =
  match String.index_opt word '(' with
  | None -> { fname = word; farg = None }
  | Some open_paren ->
      let len = String.length word in
      if word.[len - 1] <> ')' then
        raise (Syntax (Printf.sprintf "missing ')' in %S" word))
      else
        {
          fname = String.sub word 0 open_paren;
          farg = Some (String.sub word (open_paren + 1) (len - open_paren - 2));
        }

let parse_event ~mods spec ~keysym =
  let spec = String.trim spec in
  let button_of s =
    if String.length s > 3 && String.sub s 0 3 = "Btn" then
      let rest = String.sub s 3 (String.length s - 3) in
      if String.length rest > 2 && String.sub rest (String.length rest - 2) 2 = "Up"
      then
        Option.map
          (fun b -> `Up b)
          (int_of_string_opt (String.sub rest 0 (String.length rest - 2)))
      else
        Option.bind (int_of_string_opt rest) (fun b ->
            if b >= 1 && b <= 5 then Some (`Down b) else None)
    else None
  in
  match spec with
  | "Key" -> (
      match keysym with
      | Some sym -> Key (sym, mods)
      | None -> raise (Syntax "<Key> needs a keysym"))
  | "Enter" | "EnterWindow" -> Enter
  | "Leave" | "LeaveWindow" -> Leave
  | "Drop" -> Drop
  | _ -> (
      match button_of spec with
      | Some (`Down b) -> Button (b, mods)
      | Some (`Up b) -> Button_up (b, mods)
      | None -> raise (Syntax (Printf.sprintf "unknown event spec <%s>" spec)))

let parse src =
  try
    let rec bindings acc tokens =
      match tokens with
      | [] -> List.rev acc
      | _ ->
          (* modifiers *)
          let rec take_mods mods = function
            | Word w :: rest when Keysym.parse_modifier w <> None ->
                let apply = Option.get (Keysym.parse_modifier w) in
                take_mods (apply mods) rest
            | rest -> (mods, rest)
          in
          let mods, tokens = take_mods Keysym.no_mods tokens in
          let event_spec, tokens =
            match tokens with
            | Langle_event e :: rest -> (e, rest)
            | Word w :: _ -> raise (Syntax (Printf.sprintf "expected '<event>' before %S" w))
            | Colon :: _ -> raise (Syntax "expected '<event>' before ':'")
            | [] -> raise (Syntax "expected '<event>'")
          in
          let keysym, tokens =
            if String.trim event_spec = "Key" then
              match tokens with
              | Word w :: rest -> (Some w, rest)
              | _ -> raise (Syntax "<Key> needs a keysym")
            else (None, tokens)
          in
          let tokens =
            match tokens with
            | Colon :: rest -> rest
            | _ -> raise (Syntax "expected ':' after event")
          in
          (* A function list ends where the next binding starts: at '<', or
             at a run of modifier words directly followed by '<'. *)
          let rec starts_binding = function
            | Langle_event _ :: _ -> true
            | Word w :: rest when Keysym.parse_modifier w <> None -> starts_binding rest
            | _ -> false
          in
          let rec take_funcs funcs tokens =
            match tokens with
            | Word w :: rest when not (starts_binding tokens) ->
                take_funcs (parse_func w :: funcs) rest
            | _ -> (List.rev funcs, tokens)
          in
          let funcs, tokens = take_funcs [] tokens in
          if funcs = [] then raise (Syntax "binding with no functions");
          let pattern = parse_event ~mods event_spec ~keysym in
          bindings ({ pattern; funcs } :: acc) tokens
    in
    Ok (bindings [] (tokenize src))
  with Syntax msg -> Error msg

let parse_exn src =
  match parse src with
  | Ok bs -> bs
  | Error msg -> invalid_arg ("Bindings.parse_exn: " ^ msg)

let matches binding (event : Event.t) =
  match (binding.pattern, event) with
  | Button (b, m), Event.Button_press { button; mods; _ } ->
      b = button && Keysym.mod_equal m mods
  | Button_up (b, m), Event.Button_release { button; mods; _ } ->
      b = button && Keysym.mod_equal m mods
  | Key (sym, m), Event.Key_press { keysym; mods; _ } ->
      Keysym.equal sym keysym && Keysym.mod_equal m mods
  | Enter, Event.Enter_notify _ -> true
  | Leave, Event.Leave_notify _ -> true
  (* Drop is synthesised by the WM at the end of a window move, never
     matched against raw device events. *)
  | (Button _ | Button_up _ | Key _ | Enter | Leave | Drop), _ -> false

let lookup bindings event =
  match List.find_opt (fun b -> matches b event) bindings with
  | Some b -> b.funcs
  | None -> []

let drop_functions bindings =
  match List.find_opt (fun b -> b.pattern = Drop) bindings with
  | Some b -> b.funcs
  | None -> []

let pp_pattern ppf = function
  | Button (b, m) -> Format.fprintf ppf "%a<Btn%d>" Keysym.pp_modifiers m b
  | Button_up (b, m) -> Format.fprintf ppf "%a<Btn%dUp>" Keysym.pp_modifiers m b
  | Key (sym, m) -> Format.fprintf ppf "%a<Key>%s" Keysym.pp_modifiers m sym
  | Enter -> Format.fprintf ppf "<Enter>"
  | Leave -> Format.fprintf ppf "<Leave>"
  | Drop -> Format.fprintf ppf "<Drop>"

let pp_binding ppf b =
  let pp_func ppf f =
    match f.farg with
    | None -> Format.fprintf ppf "%s" f.fname
    | Some a -> Format.fprintf ppf "%s(%s)" f.fname a
  in
  Format.fprintf ppf "%a : %a" pp_pattern b.pattern
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_func)
    b.funcs

let to_string bindings =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_binding) bindings)
