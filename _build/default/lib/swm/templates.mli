(** The template resource files shipped with swm (paper §3): emulations of
    the OPEN LOOK and OSF/Motif window managers, plus a minimal default.
    Each is a resource-file string to be merged into the database with
    [Xrdb.load_string]; users "include and then override defaults in a
    standard template file". *)

val open_look : string
(** The OpenLook+ template: pulldown/name/nail title bar (Figure 1), pushpin
    stickiness, resize corners, the [Xicon] icon panel, a [RootPanel]
    (Figure 2) and a window menu. *)

val motif : string
(** Motif-like policy: menu button, title, minimize/maximize; f.zoom on
    maximize. *)

val default : string
(** Title-bar-only decoration used when no configuration resources are
    given. *)

val twm_emulation : string
(** A twm-flavoured policy: title bar with iconify/resize buttons, a
    twm-style root menu, horizontal icons. *)

val names : (string * string) list
(** All templates, by name. *)
