(** The Virtual Desktop panner (paper §6.1, Figure 3).

    A miniature representation of the whole desktop: one tiny window per
    managed client plus an outline showing the current viewport.  Button 1
    inside the panner pans the desktop to the pressed position; button 2 on
    a miniature starts a move of the corresponding client — dropping it
    anywhere in the panner repositions the real window, and crossing out of
    (or into) the panner mid-move switches between miniature and full-size
    coordinates, both directions (the paper's two crossing cases).

    The panner itself is an ordinary client window: swm reparents it, so it
    can be moved, iconified and resized like anything else; it starts
    sticky (it must not scroll off with the desktop), and resizing it
    resizes the desktop. *)

val create : Ctx.t -> screen:int -> Swm_xlib.Xid.t option
(** Create the panner client window (WM_CLASS [panner.Panner]) if the
    [panner] resource asks for one and the screen has a virtual desktop.
    Returns the client window, to be managed by {!Wm} like any client. *)

val refresh : Ctx.t -> screen:int -> unit
(** Rebuild the miniatures and the viewport outline.  Cheap enough to call
    after every pan/move/manage/unmanage. *)

val is_panner : Ctx.t -> Ctx.client -> bool

val client_of_miniature : Ctx.t -> Swm_xlib.Xid.t -> Ctx.client option

val desktop_pos_of_panner_pos :
  Ctx.t -> screen:int -> Swm_xlib.Geom.point -> Swm_xlib.Geom.point
(** Scale a panner-interior position up to desktop coordinates. *)

val pan_to_pointer : Ctx.t -> screen:int -> panner_pos:Swm_xlib.Geom.point -> unit
(** Button-1 action: centre the viewport on the pressed desktop position. *)

val panner_resized : Ctx.t -> Ctx.client -> int * int -> unit
(** Resizing the panner resizes the underlying desktop (paper §6.1). *)
