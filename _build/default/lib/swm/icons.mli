(** Icons (paper §4.1.2-§4.1.5).

    swm has no idea what an icon should look like: icon appearance panels
    describe it.  The special buttons [iconname] (shows WM_ICON_NAME) and
    [iconimage] (shows the client's icon pixmap, its own icon window, or the
    [xlogo32] default) get their content filled in here.

    Icon holder panels are special root panels that collect actual icons —
    optionally per client class, hidden when empty, or sized to fit. *)

val iconify : Ctx.t -> Ctx.client -> unit
(** Hide the frame, build/realize the icon (in a matching holder if any,
    else at the remembered/requested/default icon position on the desktop),
    and set WM_STATE to Iconic.  No-op when already iconic. *)

val deiconify : Ctx.t -> Ctx.client -> unit
(** Remove the icon (remembering its position), re-map and raise the frame,
    set WM_STATE to Normal. *)

val icon_position : Ctx.t -> Ctx.client -> Swm_xlib.Geom.point
(** Where the icon is (or would be): remembered position, WM_HINTS icon
    position, or the next cascade slot. *)

val client_of_icon_object : Ctx.t -> Swm_oi.Wobj.t -> Ctx.client option

(** {1 Holders} *)

val create_holders : Ctx.t -> screen:int -> unit
(** Build the holders named by the [iconHolders] resource; each holder [H]
    reads [iconHolder.H.classes], [.geometry], [.hideWhenEmpty] and
    [.sizeToFit]. *)

val holder_for : Ctx.t -> Ctx.client -> Ctx.holder option
val find_holder : Ctx.t -> screen:int -> string -> Ctx.holder option

val scroll_holder : Ctx.t -> Ctx.holder -> int -> unit
(** Scroll a fixed-size ("scrolling window") holder by a pixel delta,
    clamped to the content; no-op for size-to-fit holders.  Exposed to
    bindings as [f.scrollHolder(name,delta)]. *)

(** {1 Root icons} *)

val create_root_icons : Ctx.t -> screen:int -> unit
(** Realize the icon-appearance panels named by the [rootIcons] resource as
    free-standing icons: they correspond to no client and cannot be
    deiconified, but carry bindings like any object (paper §4.1.3). *)
