(* Templates are ordinary resource text; everything user-visible about the
   emulated policies lives here, not in code — that is the paper's point. *)

let open_look =
  {|
! ---- OpenLook+ template -------------------------------------------------
swm*decoration: openLook
Swm*panel.openLook: \
    button pulldown +0+0 \
    button name +C+0 \
    button nail -0+0 \
    panel client +0+1
Swm*panel.openLook.resizeCorners: True

swm*button.pulldown.bindings: \
    <Btn1> : f.menu(windowMenu) \
    <Btn3> : f.lower
swm*button.name.bindings: \
    <Btn1> : f.move \
    <Btn2> : f.raise \
    <Btn3> : f.lower
swm*button.nail.bindings: \
    <Btn1> : f.stick

! ---- icons --------------------------------------------------------------
swm*iconPanel: Xicon
Swm*panel.Xicon: \
    button iconimage +C+0 \
    button iconname +C+1
swm*button.iconimage.bindings: \
    <Btn1> : f.deiconify \
    <Btn2> : f.move
swm*button.iconname.bindings: \
    <Btn1> : f.deiconify \
    <Btn2> : f.move

! ---- root panel (Figure 2) ----------------------------------------------
swm*rootPanels: RootPanel
Swm*panel.RootPanel: \
    button quit +0+0 \
    button restart +1+0 \
    button iconify +2+0 \
    button deiconify +3+0 \
    button move +0+1 \
    button resize +1+1 \
    button raise +2+1 \
    button lower +3+1
swm*panel.RootPanel.geometry: +8+8
! root panels are always visible: stuck to the glass
swm*SwmPanel*sticky: True
swm*button.quit.bindings: <Btn1> : f.quit
swm*button.restart.bindings: <Btn1> : f.restart
swm*button.iconify.bindings: <Btn1> : f.iconify(#$)
swm*button.deiconify.bindings: <Btn1> : f.deiconify(#$)
swm*button.move.bindings: <Btn1> : f.move(#$)
swm*button.resize.bindings: <Btn1> : f.resize(#$)
swm*button.raise.bindings: <Btn1> : f.raise(#$)
swm*button.lower.bindings: <Btn1> : f.lower(#$)

! ---- window menu ---------------------------------------------------------
Swm*menu.windowMenu: \
    button wmRestore +0+0 \
    button wmMove +0+1 \
    button wmResize +0+2 \
    button wmStick +0+3 \
    button wmIconify +0+4 \
    button wmZoom +0+5
swm*button.wmRestore.bindings: <Btn1> : f.deiconify
swm*button.wmMove.bindings: <Btn1> : f.move
swm*button.wmResize.bindings: <Btn1> : f.resize
swm*button.wmStick.bindings: <Btn1> : f.stick
swm*button.wmIconify.bindings: <Btn1> : f.iconify
swm*button.wmZoom.bindings: <Btn1> : f.save f.zoom

! ---- root bindings and desktop -------------------------------------------
swm*root.bindings: \
    <Btn3> : f.menu(windowMenu) \
    <Key>Left : f.warpHorizontal(-50) \
    <Key>Right : f.warpHorizontal(50) \
    <Key>Up : f.warpVertical(-50) \
    <Key>Down : f.warpVertical(50)
swm*virtualDesktop: True
swm*desktopSize: 3456x2700
swm*panner: True
swm*panner.scale: 24
swm*panner.geometry: -8-8

! ---- shaped clients ------------------------------------------------------
swm*shaped*decoration: shapeit
swm*panel.shapeit: panel client +0+0
swm*panel.shapeit*shape: True
|}

let motif =
  {|
! ---- Motif emulation template --------------------------------------------
swm*decoration: motif
Swm*panel.motif: \
    button sysmenu +0+0 \
    button name +C+0 \
    button minimize -1+0 \
    button maximize -0+0 \
    panel client +0+1

swm*button.sysmenu.bindings: \
    <Btn1> : f.menu(mwmMenu)
swm*button.name.bindings: \
    <Btn1> : f.move \
    <Btn2> : f.raise
swm*button.minimize.bindings: <Btn1> : f.iconify
swm*button.maximize.bindings: <Btn1> : f.save f.zoom

swm*iconPanel: mwmIcon
Swm*panel.mwmIcon: \
    button iconimage +C+0 \
    button iconname +C+1
swm*button.iconimage.bindings: <Btn1> : f.deiconify
swm*button.iconname.bindings: <Btn1> : f.deiconify

Swm*menu.mwmMenu: \
    button mwmRestore +0+0 \
    button mwmMove +0+1 \
    button mwmSize +0+2 \
    button mwmMinimize +0+3 \
    button mwmMaximize +0+4 \
    button mwmLower +0+5 \
    button mwmClose +0+6
swm*button.mwmRestore.bindings: <Btn1> : f.deiconify
swm*button.mwmMove.bindings: <Btn1> : f.move
swm*button.mwmSize.bindings: <Btn1> : f.resize
swm*button.mwmMinimize.bindings: <Btn1> : f.iconify
swm*button.mwmMaximize.bindings: <Btn1> : f.save f.zoom
swm*button.mwmLower.bindings: <Btn1> : f.lower
swm*button.mwmClose.bindings: <Btn1> : f.delete

swm*root.bindings: <Btn3> : f.menu(mwmMenu)
swm*virtualDesktop: False
|}

let default =
  {|
! ---- default: title bar only ---------------------------------------------
swm*decoration: titleOnly
Swm*panel.titleOnly: \
    button name +C+0 \
    panel client +0+1
swm*button.name.bindings: \
    <Btn1> : f.move \
    <Btn2> : f.raise \
    <Btn3> : f.lower
swm*iconPanel: Xicon
Swm*panel.Xicon: \
    button iconimage +C+0 \
    button iconname +C+1
swm*button.iconimage.bindings: <Btn1> : f.deiconify
swm*button.iconname.bindings: <Btn1> : f.deiconify
swm*virtualDesktop: False
|}

let twm_emulation =
  {|
! ---- twm emulation: the look swm's author wrote first ---------------------
swm*decoration: twmBar
Swm*panel.twmBar: \
    button twmIconify +0+0 \
    button name +C+0 \
    button twmResize -0+0 \
    panel client +0+1
swm*button.twmIconify.image: xlogo32
swm*button.twmIconify.bindings: <Btn1> : f.iconify
swm*button.twmResize.bindings: <Btn1> : f.resize
swm*button.name.bindings: \
    <Btn1> : f.move \
    <Btn2> : f.raiselower
swm*iconPanel: twmIcon
Swm*panel.twmIcon: \
    button iconimage +0+0 \
    button iconname +1+0
swm*button.iconimage.bindings: <Btn1> : f.deiconify
swm*button.iconname.bindings: <Btn1> : f.deiconify
swm*root.bindings: <Btn1> : f.menu(twmMenu)
Swm*menu.twmMenu: \
    button twmMhdr +0+0 \
    button twmMiconify +0+1 \
    button twmMresize +0+2 \
    button twmMmove +0+3 \
    button twmMraise +0+4 \
    button twmMlower +0+5 \
    button twmMidentify +0+6
swm*button.twmMhdr.bindings: <Btn1> : f.refresh
swm*button.twmMiconify.bindings: <Btn1> : f.iconify
swm*button.twmMresize.bindings: <Btn1> : f.resize
swm*button.twmMmove.bindings: <Btn1> : f.move
swm*button.twmMraise.bindings: <Btn1> : f.raise
swm*button.twmMlower.bindings: <Btn1> : f.lower
swm*button.twmMidentify.bindings: <Btn1> : f.identify
swm*virtualDesktop: False
|}

let names =
  [ ("OpenLook+", open_look); ("Motif", motif); ("Twm", twm_emulation);
    ("default", default) ]
