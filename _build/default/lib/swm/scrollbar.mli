(** Desktop scrollbars — the first of the paper's three panning methods
    ("scrollbars, a panner object, or window manager commands", §6).

    When the [scrollbars] resource is true, swm puts a horizontal bar along
    the bottom edge and a vertical bar along the right edge of the glass
    (override-redirect WM furniture, like twm's, not managed clients).  A
    thumb in each bar shows which slice of the Virtual Desktop is visible;
    button 1 in a bar pans so the viewport centres on the pressed spot. *)

val create : Ctx.t -> screen:int -> unit
(** Create the bars if the resource asks for them and the screen has a
    virtual desktop; registers them in the screen state. *)

val refresh : Ctx.t -> screen:int -> unit
(** Reposition and resize the thumbs after a pan or desktop resize. *)

val bar_thickness : int

val classify : Ctx.t -> screen:int -> Swm_xlib.Xid.t -> [ `Horizontal | `Vertical ] option
(** Is this window one of the screen's scrollbars (or its thumb)? *)

val handle_press :
  Ctx.t -> screen:int -> [ `Horizontal | `Vertical ] -> bar_pos:Swm_xlib.Geom.point -> unit
(** Button-1: pan so the viewport centres on the pressed bar position. *)
