(** Object bindings: Xt-translation-style event → window-manager-function
    lists (paper §4.2).

    {v
swm*button.foo.bindings: \
    <Btn1>   : f.raise \
    <Btn2>   : f.save f.zoom \
    <Key>Up  : f.warpVertical(-50)
    v}

    Any number of bindings per object; any number of functions per binding.
    Modifier names may precede the event spec ([Shift<Btn1>: ...]). *)

type event_pattern =
  | Button of int * Swm_xlib.Keysym.modifiers         (** [<BtnN>] press *)
  | Button_up of int * Swm_xlib.Keysym.modifiers      (** [<BtnNUp>] release *)
  | Key of Swm_xlib.Keysym.t * Swm_xlib.Keysym.modifiers  (** [<Key>Sym] *)
  | Enter
  | Leave
  | Drop
      (** fires when a window move ends with the pointer over this object —
          the drag-and-drop destination behaviour of root icons (paper
          §4.1.3) *)

type func_call = { fname : string; farg : string option }
(** One [f.name] or [f.name(arg)] invocation; the argument is kept raw and
    interpreted by {!Functions}. *)

type binding = { pattern : event_pattern; funcs : func_call list }

val parse : string -> (binding list, string) result
(** Parse a bindings resource value.  Bindings may be separated by newlines
    or simply juxtaposed (the next binding starts at its modifier/[<]). *)

val parse_exn : string -> binding list

val matches : binding -> Swm_xlib.Event.t -> bool
(** Does this binding fire on that device event? *)

val lookup : binding list -> Swm_xlib.Event.t -> func_call list
(** Functions to run for the event ([[]] when nothing matches). *)

val drop_functions : binding list -> func_call list
(** The functions of the [<Drop>] binding, if any. *)

val pp_binding : Format.formatter -> binding -> unit
val to_string : binding list -> string
