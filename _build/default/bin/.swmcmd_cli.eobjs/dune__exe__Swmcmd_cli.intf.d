bin/swmcmd_cli.mli:
