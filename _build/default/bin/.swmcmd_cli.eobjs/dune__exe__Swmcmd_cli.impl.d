bin/swmcmd_cli.ml: Array List Printf String Swm_clients Swm_core Swm_xlib Sys
