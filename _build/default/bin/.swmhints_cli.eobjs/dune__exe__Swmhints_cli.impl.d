bin/swmhints_cli.ml: Arg Cmd Cmdliner Format In_channel List Option Swm_core Swm_xlib Term
