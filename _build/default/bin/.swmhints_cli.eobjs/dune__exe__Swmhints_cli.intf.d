bin/swmhints_cli.mli:
