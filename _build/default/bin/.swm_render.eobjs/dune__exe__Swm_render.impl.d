bin/swm_render.ml: Array Option Printf Swm_clients Swm_core Swm_oi Swm_xlib Sys
