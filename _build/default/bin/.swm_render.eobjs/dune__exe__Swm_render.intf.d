bin/swm_render.mli:
