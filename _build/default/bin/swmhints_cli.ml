(* swmhints: the session-hint utility from paper §7.

   The real swmhints appends its arguments to a root-window property for
   swm to interpret when clients get reparented.  This CLI exercises the
   exact encoding against the library:

     swmhints_cli encode -g 120x120+1010+359 -i +0+0 -s NormalState \
         -c "oclock -geom 100x100"
     swmhints_cli decode '-geometry 120x120+1010+359 -cmd "oclock"'
     swmhints_cli check <places-file     # validate a whole places file *)

module Session = Swm_core.Session
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
open Cmdliner

let geometry_conv =
  let parse s =
    match Geom.parse s with
    | Ok { Geom.width = Some w; height = Some h;
           xoff = Some (Geom.From_start x); yoff = Some (Geom.From_start y) } ->
        Ok (Geom.rect x y w h)
    | Ok _ -> Error (`Msg "geometry must be WxH+X+Y")
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (r : Geom.rect) =
    Format.fprintf ppf "%dx%d+%d+%d" r.w r.h r.x r.y
  in
  Arg.conv (parse, print)

let state_conv =
  let parse s =
    match Prop.wm_state_of_string s with
    | Some state -> Ok state
    | None -> Error (`Msg "state must be NormalState or IconicState")
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Prop.wm_state_to_string s))

(* ---- encode ---- *)

let encode geometry icon state sticky host command =
  let icon_geometry =
    Option.map (fun (r : Geom.rect) -> Geom.point r.x r.y) icon
  in
  let hint =
    { Session.geometry; icon_geometry; state; sticky; command; host }
  in
  print_endline (Session.hint_to_args hint)

let encode_cmd =
  let geometry =
    Arg.(
      required
      & opt (some geometry_conv) None
      & info [ "g"; "geometry" ] ~docv:"WxH+X+Y" ~doc:"Window geometry.")
  in
  let icon =
    Arg.(
      value
      & opt (some geometry_conv) None
      & info [ "i"; "icongeometry" ] ~docv:"+X+Y" ~doc:"Icon position.")
  in
  let state =
    Arg.(
      value
      & opt state_conv Prop.Normal
      & info [ "s"; "state" ] ~docv:"STATE" ~doc:"NormalState or IconicState.")
  in
  let sticky = Arg.(value & flag & info [ "sticky" ] ~doc:"Sticky window.") in
  let host =
    Arg.(
      value
      & opt (some string) None
      & info [ "host" ] ~docv:"HOST" ~doc:"WM_CLIENT_MACHINE for remote clients.")
  in
  let command =
    Arg.(
      required
      & opt (some string) None
      & info [ "c"; "cmd" ] ~docv:"COMMAND" ~doc:"The WM_COMMAND string.")
  in
  Cmd.v
    (Cmd.info "encode" ~doc:"Encode a session hint as swmhints arguments")
    Term.(const encode $ geometry $ icon $ state $ sticky $ host $ command)

(* ---- decode ---- *)

let decode line =
  match Session.hint_of_args line with
  | Ok hint ->
      Format.printf "%a@." Session.pp_hint hint;
      `Ok ()
  | Error msg -> `Error (false, msg)

let decode_cmd =
  let line =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ARGS")
  in
  Cmd.v
    (Cmd.info "decode" ~doc:"Parse an swmhints argument string")
    Term.(ret (const decode $ line))

(* ---- check ---- *)

let check_places () =
  let text = In_channel.input_all In_channel.stdin in
  match Session.parse_places_file text with
  | Ok hints ->
      Format.printf "%d session hint(s):@." (List.length hints);
      List.iter (fun h -> Format.printf "  %a@." Session.pp_hint h) hints;
      `Ok ()
  | Error msg -> `Error (false, msg)

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Validate a places file read from stdin")
    Term.(ret (const check_places $ const ()))

let () =
  let doc = "swm session hints (paper \xc2\xa77)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "swmhints" ~doc) [ encode_cmd; decode_cmd; check_cmd ]))
