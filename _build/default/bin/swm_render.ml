(* Regenerate the paper's figures as character renderings.

   Usage: swm_render [fig1|fig2|fig3|fig_shape|all] *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Render = Swm_xlib.Render
module Wm = Swm_core.Wm
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock
module Client_app = Swm_clients.Client_app

let separator title =
  Printf.printf "\n===== %s =====\n" title

(* Figure 1: an OpenLook+ decorated client. *)
let fig1 () =
  separator "Figure 1: OpenLook+ decoration (xterm, 320x160 client)";
  let server = Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ] server in
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"xterm" ~class_:"XTerm" ~us_position:true
         ~background:'t' (Geom.rect 40 48 320 160))
  in
  ignore (Wm.step wm);
  (match Wm.find_client wm (Client_app.window app) with
  | Some client ->
      print_string
        (Render.to_string (Render.render_window server client.Swm_core.Ctx.frame ~scale:8 ()))
  | None -> print_endline "client not managed?")

(* Figure 2: the root panel. *)
let fig2 () =
  separator "Figure 2: Root panel (reparented; quit/restart/... buttons)";
  let server = Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*virtualDesktop: False\n" ] server in
  let scr = Swm_core.Ctx.screen (Wm.ctx wm) 0 in
  (match scr.Swm_core.Ctx.root_panels with
  | panel :: _ ->
      let win = Swm_oi.Wobj.window panel in
      let frame =
        match Wm.find_client wm win with
        | Some client -> client.Swm_core.Ctx.frame
        | None -> win
      in
      print_string (Render.to_string (Render.render_window server frame ~scale:8 ()))
  | [] -> print_endline "no root panel configured")

(* Figure 3: the Virtual Desktop panner. *)
let fig3 () =
  separator "Figure 3: Virtual Desktop panner (miniatures + viewport outline)";
  let server = Server.create ~screens:[ { Server.size = (1152, 900); monochrome = false } ] () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let _a = Stock.xterm server ~at:(Geom.point 100 120) () in
  let _b = Stock.xclock server ~at:(Geom.point 700 200) () in
  let _c = Stock.xterm server ~at:(Geom.point 1600 1000) ~instance:"xterm2" () in
  ignore (Wm.step wm);
  Swm_core.Panner.refresh (Wm.ctx wm) ~screen:0;
  let ctx = Wm.ctx wm in
  (match (Swm_core.Ctx.screen ctx 0).Swm_core.Ctx.vdesk with
  | Some vdesk when not (Swm_xlib.Xid.is_none vdesk.Swm_core.Ctx.panner_client) ->
      let client = Option.get (Wm.find_client wm vdesk.Swm_core.Ctx.panner_client) in
      print_string
        (Render.to_string (Render.render_window server client.Swm_core.Ctx.frame ~scale:4 ()))
  | Some _ | None -> print_endline "no panner")

(* Shaped decoration: oclock under shaped*decoration. *)
let fig_shape () =
  separator "Shaped client: oclock with shaped decoration (no visible frame)";
  let server = Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ] server in
  let app = Stock.oclock server ~at:(Geom.point 100 80) () in
  ignore (Wm.step wm);
  ignore app;
  print_string (Render.to_string (Render.render server ~screen:0 ~scale:8 ()))

let all () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig_shape ()

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "fig1" -> fig1 ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig_shape" -> fig_shape ()
  | "all" -> all ()
  | other ->
      Printf.eprintf "unknown figure %S (fig1|fig2|fig3|fig_shape|all)\n" other;
      exit 1
