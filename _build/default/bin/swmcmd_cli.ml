(* swmcmd: demonstrate the out-of-process command protocol (paper §4.3).

   Since the simulated server lives in one process, this CLI shows the
   protocol round-trip: a client connection writes SWM_COMMAND on the root,
   the WM's event loop picks it up and executes it.  Commands are taken
   from argv (joined), e.g.:

     swmcmd_cli "f.iconify(XTerm)" *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock

let () =
  let command =
    if Array.length Sys.argv > 1 then
      String.concat " " (Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)))
    else "f.iconify(XTerm)"
  in
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let ctx = Wm.ctx wm in
  let _xterm = Stock.xterm server ~at:(Geom.point 60 80) () in
  let _xclock = Stock.xclock server ~at:(Geom.point 600 60) () in
  ignore (Wm.step wm);

  (* An unrelated client sends the command. *)
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 command;
  ignore (Wm.step wm);

  Printf.printf "sent: %s\n" command;
  List.iter
    (fun (c : Ctx.client) ->
      Printf.printf "client %-10s class=%-8s state=%s sticky=%b\n" c.Ctx.instance
        c.Ctx.class_
        (Swm_xlib.Prop.wm_state_to_string c.Ctx.state)
        c.Ctx.sticky)
    (Ctx.all_clients ctx);
  match ctx.Ctx.mode with
  | Ctx.Prompting _ -> print_endline "swm is now prompting for a target window"
  | _ -> ()
