bin/swm_main.ml: Array Format List Logs Printf Swm_clients Swm_core Swm_xlib Sys
