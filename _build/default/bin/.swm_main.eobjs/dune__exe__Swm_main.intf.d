bin/swm_main.mli:
